// Edge-case and stress tests for the kNN machinery (SortedPoints1D and
// KdTree2D) beyond the core correctness checks in mi_test.cc: degenerate
// geometries, duplicate-heavy data, leaf-boundary sizes, and randomized
// brute-force differential sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/random.h"
#include "src/mi/knn.h"

namespace joinmi {
namespace {

// ------------------------------------------------------- SortedPoints1D --

TEST(SortedPoints1DEdgeTest, TwoPoints) {
  SortedPoints1D points({1.0, 4.0});
  EXPECT_EQ(points.KthNeighborDistance(1.0, 1), 3.0);
  EXPECT_EQ(points.KthNeighborDistance(4.0, 1), 3.0);
}

TEST(SortedPoints1DEdgeTest, AllIdentical) {
  SortedPoints1D points(std::vector<double>(50, 2.5));
  for (int k = 1; k < 50; ++k) {
    ASSERT_EQ(points.KthNeighborDistance(2.5, k), 0.0) << k;
  }
  // Closed count includes every copy; strict r=0 counts none.
  EXPECT_EQ(points.CountWithin(2.5, 0.0, /*strict=*/false,
                               /*exclude_self=*/false),
            50u);
  EXPECT_EQ(points.CountWithin(2.5, 0.0, /*strict=*/true,
                               /*exclude_self=*/false),
            0u);
}

TEST(SortedPoints1DEdgeTest, QueryAtExtremes) {
  SortedPoints1D points({0.0, 1.0, 2.0, 3.0, 4.0});
  // Leftmost point: all neighbors to the right.
  EXPECT_EQ(points.KthNeighborDistance(0.0, 4), 4.0);
  // Rightmost point: all neighbors to the left.
  EXPECT_EQ(points.KthNeighborDistance(4.0, 4), 4.0);
}

TEST(SortedPoints1DEdgeTest, NegativeAndMixedSigns) {
  SortedPoints1D points({-5.0, -1.0, 0.0, 3.0});
  EXPECT_EQ(points.KthNeighborDistance(-1.0, 1), 1.0);   // -> 0.0
  EXPECT_EQ(points.KthNeighborDistance(-1.0, 2), 4.0);   // -> -5.0 or 3.0
  EXPECT_EQ(points.CountWithin(0.0, 4.0, /*strict=*/false), 2u);
}

TEST(SortedPoints1DEdgeTest, BruteForceDifferentialSweep) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    // Mixed continuous + heavily tied data.
    std::vector<double> data;
    const size_t n = 20 + rng.NextBounded(200);
    for (size_t i = 0; i < n; ++i) {
      data.push_back(rng.Bernoulli(0.4)
                         ? static_cast<double>(rng.NextBounded(5))
                         : rng.Uniform(-3.0, 8.0));
    }
    SortedPoints1D points(data);
    for (int probe = 0; probe < 10; ++probe) {
      const double x = data[rng.NextBounded(data.size())];
      const int k = 1 + static_cast<int>(rng.NextBounded(
                            std::min<size_t>(8, data.size() - 1)));
      // Brute force: sorted |d| excluding one copy of x.
      std::vector<double> dists;
      bool excluded_self = false;
      for (double p : data) {
        if (!excluded_self && p == x) {
          excluded_self = true;
          continue;
        }
        dists.push_back(std::fabs(p - x));
      }
      std::sort(dists.begin(), dists.end());
      ASSERT_DOUBLE_EQ(points.KthNeighborDistance(x, k),
                       dists[static_cast<size_t>(k - 1)])
          << "trial " << trial << " k " << k;
      // Range counts, both strictness modes, self included.
      const double r = dists[static_cast<size_t>(k - 1)];
      size_t closed = 0, open = 0;
      for (double p : data) {
        const double d = std::fabs(p - x);
        if (d <= r) ++closed;
        if (d < r) ++open;
      }
      ASSERT_EQ(points.CountWithin(x, r, /*strict=*/false,
                                   /*exclude_self=*/false),
                closed);
      ASSERT_EQ(points.CountWithin(x, r, /*strict=*/true,
                                   /*exclude_self=*/false),
                open);
    }
  }
}

// ------------------------------------------------------------- KdTree2D --

TEST(KdTree2DEdgeTest, SizesAroundLeafBoundary) {
  // The tree switches from a single leaf to internal nodes at 16 points;
  // exercise sizes around that boundary against brute force.
  Rng rng(7);
  for (size_t n : {2u, 15u, 16u, 17u, 33u, 64u}) {
    std::vector<double> xs(n), ys(n);
    for (size_t i = 0; i < n; ++i) {
      xs[i] = rng.Uniform(-1, 1);
      ys[i] = rng.Uniform(-1, 1);
    }
    KdTree2D tree(xs, ys);
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        best = std::min(best, std::max(std::fabs(xs[j] - xs[i]),
                                       std::fabs(ys[j] - ys[i])));
      }
      ASSERT_DOUBLE_EQ(tree.KthNeighborDistance(i, 1), best)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(KdTree2DEdgeTest, CollinearPoints) {
  // All points on a line stress one split axis.
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(0.0);
  }
  KdTree2D tree(xs, ys);
  EXPECT_EQ(tree.KthNeighborDistance(50, 1), 1.0);
  EXPECT_EQ(tree.KthNeighborDistance(50, 4), 2.0);
  EXPECT_EQ(tree.KthNeighborDistance(0, 3), 3.0);
  EXPECT_EQ(tree.CountWithin(50, 2.0, /*strict=*/false), 4u);
}

TEST(KdTree2DEdgeTest, ManyCoincidentClusters) {
  // 10 clusters of 30 identical points each.
  std::vector<double> xs, ys;
  for (int c = 0; c < 10; ++c) {
    for (int i = 0; i < 30; ++i) {
      xs.push_back(static_cast<double>(c) * 5.0);
      ys.push_back(static_cast<double>(c) * -3.0);
    }
  }
  KdTree2D tree(xs, ys);
  for (size_t i : {0u, 31u, 299u}) {
    EXPECT_EQ(tree.CountCoincident(i), 29u) << i;
    EXPECT_EQ(tree.KthNeighborDistance(i, 29), 0.0);
    EXPECT_EQ(tree.KthNeighborDistance(i, 30), 5.0);
  }
}

TEST(KdTree2DEdgeTest, RandomizedDifferentialWithTies) {
  Rng rng(31);
  const size_t n = 400;
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    // Quantized coordinates: heavy Chebyshev ties.
    xs[i] = static_cast<double>(rng.NextBounded(12));
    ys[i] = static_cast<double>(rng.NextBounded(12));
  }
  KdTree2D tree(xs, ys);
  for (size_t probe = 0; probe < 60; ++probe) {
    const size_t i = rng.NextBounded(n);
    const int k = 1 + static_cast<int>(rng.NextBounded(10));
    std::vector<double> dists;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dists.push_back(
          std::max(std::fabs(xs[j] - xs[i]), std::fabs(ys[j] - ys[i])));
    }
    std::sort(dists.begin(), dists.end());
    const double expected = dists[static_cast<size_t>(k - 1)];
    ASSERT_DOUBLE_EQ(tree.KthNeighborDistance(i, k), expected);
    size_t open = 0, closed = 0;
    for (double d : dists) {
      if (d < expected) ++open;
      if (d <= expected) ++closed;
    }
    ASSERT_EQ(tree.CountWithin(i, expected, /*strict=*/true), open);
    ASSERT_EQ(tree.CountWithin(i, expected, /*strict=*/false), closed);
  }
}

}  // namespace
}  // namespace joinmi
