// Unit tests for src/sketch: KMV heap, key hashing, the five sketch
// builders (size bounds, coordination, sampling properties), and the sketch
// join — including the paper's Section IV-B pathological example.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "src/common/random.h"
#include "src/join/left_join.h"
#include "src/sketch/builder.h"
#include "src/sketch/key_hash.h"
#include "src/sketch/sketch_join.h"

namespace joinmi {
namespace {

// ----------------------------------------------------------------- KMV ----

TEST(KmvHeapTest, KeepsMinimumRanks) {
  KmvHeap heap(3);
  for (double rank : {0.9, 0.1, 0.5, 0.7, 0.3, 0.2}) {
    heap.Offer(SketchEntry{static_cast<uint64_t>(rank * 100), rank, Value()});
  }
  const auto entries = heap.TakeSorted();
  ASSERT_EQ(entries.size(), 3u);
  std::vector<double> ranks;
  for (const auto& e : entries) ranks.push_back(e.rank);
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(ranks, (std::vector<double>{0.1, 0.2, 0.3}));
}

TEST(KmvHeapTest, WouldAdmitMatchesOfferBehavior) {
  KmvHeap heap(2);
  heap.Offer(SketchEntry{1, 0.5, Value()});
  EXPECT_TRUE(heap.WouldAdmit(0.9));  // not yet full
  heap.Offer(SketchEntry{2, 0.8, Value()});
  EXPECT_TRUE(heap.WouldAdmit(0.7));
  EXPECT_FALSE(heap.WouldAdmit(0.8));  // equal rank not admitted
  EXPECT_FALSE(heap.WouldAdmit(0.9));
}

TEST(KmvHeapTest, ZeroCapacityAndUnderfill) {
  KmvHeap zero(0);
  EXPECT_FALSE(zero.WouldAdmit(0.0));
  zero.Offer(SketchEntry{1, 0.1, Value()});
  EXPECT_EQ(zero.TakeSorted().size(), 0u);

  KmvHeap big(100);
  big.Offer(SketchEntry{1, 0.1, Value()});
  EXPECT_EQ(big.TakeSorted().size(), 1u);
}

// ------------------------------------------------------------- KeyHash ----

TEST(KeyHashTest, DeterministicAndSeedSeparated) {
  EXPECT_EQ(HashKey(Value("k1"), 0), HashKey(Value("k1"), 0));
  EXPECT_NE(HashKey(Value("k1"), 0), HashKey(Value("k1"), 1));
  EXPECT_NE(HashKey(Value("k1"), 0), HashKey(Value("k2"), 0));
  EXPECT_EQ(HashKey(Value(int64_t{5}), 0), HashKey(Value(int64_t{5}), 0));
}

TEST(KeyHashTest, TupleHashSeparatesOccurrences) {
  const uint64_t h = HashKey(Value("k"), 0);
  EXPECT_NE(TupleUnitHash(h, 1), TupleUnitHash(h, 2));
  EXPECT_NE(TupleUnitHash(h, 1), KeyUnitHash(h));
  EXPECT_EQ(TupleUnitHash(h, 3), TupleUnitHash(h, 3));
}

// ------------------------------------------------------ Builder helpers ---

/// Builds a train table with the given keys/targets.
std::shared_ptr<Table> MakeTrain(std::vector<std::string> keys,
                                 std::vector<int64_t> targets) {
  return *Table::FromColumns(
      {{"K", Column::MakeString(std::move(keys))},
       {"Y", Column::MakeInt64(std::move(targets))}});
}

SketchOptions Options(size_t n, uint64_t sampling_seed = 99) {
  SketchOptions options;
  options.capacity = n;
  options.sampling_seed = sampling_seed;
  return options;
}

Result<Sketch> BuildTrain(SketchMethod method, const Table& table, size_t n) {
  auto builder = MakeSketchBuilder(method, Options(n));
  return builder->SketchTrain(*(*table.GetColumn("K")),
                              *(*table.GetColumn("Y")));
}

constexpr SketchMethod kAllMethods[] = {
    SketchMethod::kTupsk, SketchMethod::kLv2sk, SketchMethod::kPrisk,
    SketchMethod::kIndsk, SketchMethod::kCsk};

// ------------------------------------------------------ Generic builder ---

class SketchMethodTest : public testing::TestWithParam<SketchMethod> {};

TEST_P(SketchMethodTest, NamesRoundTrip) {
  auto parsed = SketchMethodFromString(SketchMethodToString(GetParam()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, GetParam());
}

TEST_P(SketchMethodTest, TrainSketchRespectsSizeBound) {
  // 1000 rows over 200 distinct keys; capacity 64.
  Rng rng(5);
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back("key" + std::to_string(rng.NextBounded(200)));
    targets.push_back(static_cast<int64_t>(rng.NextBounded(50)));
  }
  auto table = MakeTrain(keys, targets);
  auto sketch = BuildTrain(GetParam(), *table, 64);
  ASSERT_TRUE(sketch.ok());
  // LV2SK/PRISK are bounded by 2n; the others by n.
  const size_t bound = (GetParam() == SketchMethod::kLv2sk ||
                        GetParam() == SketchMethod::kPrisk)
                           ? 128
                           : 64;
  EXPECT_LE(sketch->size(), bound);
  EXPECT_GT(sketch->size(), 0u);
  EXPECT_EQ(sketch->capacity, 64u);
  EXPECT_EQ(sketch->source_rows, 1000u);
  EXPECT_EQ(sketch->source_distinct_keys, table->column(0)->CountDistinct());
}

TEST_P(SketchMethodTest, SmallTableFitsEntirely) {
  // With capacity >= rows, coordinated sketches must keep every usable row
  // (CSK keeps one per key; INDSK keeps all).
  auto table = MakeTrain({"a", "b", "c"}, {1, 2, 3});
  auto sketch = BuildTrain(GetParam(), *table, 100);
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch->size(), 3u);
}

TEST_P(SketchMethodTest, DeterministicAcrossRebuilds) {
  Rng rng(17);
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (int i = 0; i < 500; ++i) {
    keys.push_back("k" + std::to_string(rng.NextBounded(80)));
    targets.push_back(static_cast<int64_t>(i));
  }
  auto table = MakeTrain(keys, targets);
  auto a = BuildTrain(GetParam(), *table, 32);
  auto b = BuildTrain(GetParam(), *table, 32);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->entries[i].key_hash, b->entries[i].key_hash);
    EXPECT_EQ(a->entries[i].value, b->entries[i].value);
  }
}

TEST_P(SketchMethodTest, SkipsNullKeysAndValues) {
  auto keys = Column::MakeString({"a", "b", "c", "d"},
                                 {true, false, true, true});
  auto values = Column::MakeInt64({1, 2, 3, 4}, {true, true, false, true});
  auto builder = MakeSketchBuilder(GetParam(), Options(10));
  auto sketch = builder->SketchTrain(*keys, *values);
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch->source_rows, 2u);  // only rows 0 and 3 fully valid
  EXPECT_LE(sketch->size(), 2u);
}

TEST_P(SketchMethodTest, CandidateSketchAggregatesPerKey) {
  // Keys b and c repeat; AVG must be applied before sampling.
  auto cand = *Table::FromColumns(
      {{"K", Column::MakeString({"a", "b", "b", "b", "c", "c", "c"})},
       {"Z", Column::MakeInt64({1, 2, 2, 5, 0, 3, 3})}});
  auto builder = MakeSketchBuilder(GetParam(), Options(10));
  auto sketch = builder->SketchCandidate(*(*cand->GetColumn("K")),
                                         *(*cand->GetColumn("Z")),
                                         AggKind::kAvg);
  ASSERT_TRUE(sketch.ok());
  // Unique keys after aggregation.
  std::unordered_set<uint64_t> key_hashes;
  for (const auto& e : sketch->entries) key_hashes.insert(e.key_hash);
  EXPECT_EQ(key_hashes.size(), sketch->size());
  if (GetParam() != SketchMethod::kCsk) {
    // AVG values are {a->1, b->3, c->2}.
    std::unordered_map<uint64_t, double> expected = {
        {HashKey(Value("a"), 0), 1.0},
        {HashKey(Value("b"), 0), 3.0},
        {HashKey(Value("c"), 0), 2.0}};
    ASSERT_EQ(sketch->size(), 3u);
    for (const auto& e : sketch->entries) {
      EXPECT_EQ(*e.value.AsDouble(), expected.at(e.key_hash));
    }
  } else {
    // CSK keeps the first value per key: {a->1, b->2, c->0}.
    std::unordered_map<uint64_t, int64_t> expected = {
        {HashKey(Value("a"), 0), 1},
        {HashKey(Value("b"), 0), 2},
        {HashKey(Value("c"), 0), 0}};
    for (const auto& e : sketch->entries) {
      EXPECT_EQ(e.value.int64(), expected.at(e.key_hash));
    }
  }
}

TEST_P(SketchMethodTest, ZeroCapacityRejected) {
  auto table = MakeTrain({"a"}, {1});
  auto builder = MakeSketchBuilder(GetParam(), Options(0));
  EXPECT_FALSE(builder
                   ->SketchTrain(*(*table->GetColumn("K")),
                                 *(*table->GetColumn("Y")))
                   .ok());
}

TEST_P(SketchMethodTest, MismatchedColumnsRejected) {
  auto keys = Column::MakeString({"a", "b"});
  auto values = Column::MakeInt64({1});
  auto builder = MakeSketchBuilder(GetParam(), Options(4));
  EXPECT_FALSE(builder->SketchTrain(*keys, *values).ok());
}

INSTANTIATE_TEST_SUITE_P(AllMethods, SketchMethodTest,
                         testing::ValuesIn(kAllMethods),
                         [](const testing::TestParamInfo<SketchMethod>& info) {
                           return SketchMethodToString(info.param);
                         });

// --------------------------------------------------------------- TUPSK ----

TEST(TupskTest, RepeatedKeysRepresentedProportionally) {
  // Key "hot" fills 80% of rows; in a TUPSK sketch its share of entries
  // should be ~80% because rows are sampled uniformly.
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(i % 5 == 0 ? "cold" + std::to_string(i) : "hot");
    targets.push_back(i);
  }
  auto table = MakeTrain(keys, targets);
  auto sketch = *BuildTrain(SketchMethod::kTupsk, *table, 512);
  const uint64_t hot_hash = HashKey(Value("hot"), 0);
  size_t hot = 0;
  for (const auto& e : sketch.entries) {
    if (e.key_hash == hot_hash) ++hot;
  }
  const double share = static_cast<double>(hot) / sketch.size();
  EXPECT_NEAR(share, 0.8, 0.08);
}

TEST(TupskTest, UniformRowInclusion) {
  // Every row (not key) should appear in the sketch with probability n/N.
  // Build many sketches varying the hash seed and count inclusions of a
  // high-frequency key row vs a unique key row.
  std::vector<std::string> keys = {"dup", "dup", "dup", "dup"};
  std::vector<int64_t> targets = {0, 1, 2, 3};
  for (int i = 0; i < 60; ++i) {
    keys.push_back("solo" + std::to_string(i));
    targets.push_back(100 + i);
  }
  auto table = MakeTrain(keys, targets);
  size_t dup_row_hits = 0, solo_row_hits = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    SketchOptions options = Options(16);
    options.hash_seed = static_cast<uint32_t>(trial + 1);
    auto builder = MakeSketchBuilder(SketchMethod::kTupsk, options);
    auto sketch = *builder->SketchTrain(*(*table->GetColumn("K")),
                                        *(*table->GetColumn("Y")));
    for (const auto& e : sketch.entries) {
      if (e.value == Value(int64_t{1})) ++dup_row_hits;     // 2nd dup row
      if (e.value == Value(int64_t{105})) ++solo_row_hits;  // a solo row
    }
  }
  // Both rows should be included at the same rate n/N = 16/64 = 0.25.
  const double dup_rate = static_cast<double>(dup_row_hits) / kTrials;
  const double solo_rate = static_cast<double>(solo_row_hits) / kTrials;
  EXPECT_NEAR(dup_rate, 0.25, 0.07);
  EXPECT_NEAR(solo_rate, 0.25, 0.07);
}

TEST(TupskTest, PaperPathologicalExampleKeepsTargetEntropy) {
  // Section IV-B: K = [a,b,c,d,e,f,f,...,f], Y = [0,0,0,0,0,1,2,...,95].
  // LV2SK's level-1 key sampling can select only the five zero rows,
  // collapsing the target entropy; TUPSK samples rows uniformly so the f
  // rows (95% of the table) dominate every sketch.
  std::vector<std::string> keys = {"a", "b", "c", "d", "e"};
  std::vector<int64_t> targets = {0, 0, 0, 0, 0};
  for (int i = 1; i <= 95; ++i) {
    keys.push_back("f");
    targets.push_back(i);
  }
  auto table = MakeTrain(keys, targets);
  auto sketch = *BuildTrain(SketchMethod::kTupsk, *table, 5);
  EXPECT_EQ(sketch.size(), 5u);
  const uint64_t f_hash = HashKey(Value("f"), 0);
  size_t f_rows = 0;
  for (const auto& e : sketch.entries) {
    if (e.key_hash == f_hash) ++f_rows;
  }
  // E[f rows] = 5 * 0.95 = 4.75; anything >= 3 keeps entropy healthy. With
  // the fixed seed this is deterministic; assert the qualitative property.
  EXPECT_GE(f_rows, 3u);
}

// --------------------------------------------------------------- LV2SK ----

TEST(Lv2skTest, PerKeyCapMatchesFormula) {
  // One key with 60% of rows, n = 10: n_k = floor(10 * 0.6) = 6 samples;
  // rare keys get max(1, floor(10 * small)) = 1.
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (int i = 0; i < 60; ++i) {
    keys.push_back("heavy");
    targets.push_back(i);
  }
  for (int i = 0; i < 40; ++i) {
    keys.push_back("light" + std::to_string(i));
    targets.push_back(1000 + i);
  }
  auto table = MakeTrain(keys, targets);
  auto sketch = *BuildTrain(SketchMethod::kLv2sk, *table, 10);
  const uint64_t heavy_hash = HashKey(Value("heavy"), 0);
  std::unordered_map<uint64_t, size_t> per_key;
  for (const auto& e : sketch.entries) ++per_key[e.key_hash];
  // Heavy key, if selected at level 1, carries exactly 6 entries.
  if (per_key.count(heavy_hash) > 0) {
    EXPECT_EQ(per_key[heavy_hash], 6u);
  }
  for (const auto& [hash, count] : per_key) {
    if (hash != heavy_hash) {
      EXPECT_EQ(count, 1u);
    }
  }
}

TEST(Lv2skTest, UniqueKeysBehaveLikeKmv) {
  // With unique keys, level 2 always keeps exactly 1 row per key, so the
  // sketch is exactly the n minimum-rank keys.
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (int i = 0; i < 300; ++i) {
    keys.push_back("u" + std::to_string(i));
    targets.push_back(i);
  }
  auto table = MakeTrain(keys, targets);
  auto sketch = *BuildTrain(SketchMethod::kLv2sk, *table, 50);
  EXPECT_EQ(sketch.size(), 50u);
  std::unordered_set<uint64_t> distinct;
  for (const auto& e : sketch.entries) distinct.insert(e.key_hash);
  EXPECT_EQ(distinct.size(), 50u);
}

TEST(Lv2skTest, PathologicalExampleUnderrepresentsHeavyKey) {
  // Counterpart of TupskTest.PaperPathologicalExample: with keys a-e and f,
  // level 1 picks 5 of 6 distinct keys regardless of frequency, so the
  // probability that f is excluded is 1/6 -- and when it is included its
  // rows are capped at ~n*0.95. Verify the first-level frequency blindness:
  // across seeds, f is absent from ~1/6 of sketches.
  std::vector<std::string> keys = {"a", "b", "c", "d", "e"};
  std::vector<int64_t> targets = {0, 0, 0, 0, 0};
  for (int i = 1; i <= 95; ++i) {
    keys.push_back("f");
    targets.push_back(i);
  }
  auto table = MakeTrain(keys, targets);
  int absent = 0;
  constexpr int kTrials = 600;
  for (int trial = 0; trial < kTrials; ++trial) {
    SketchOptions options = Options(5);
    options.hash_seed = static_cast<uint32_t>(trial + 1);
    auto builder = MakeSketchBuilder(SketchMethod::kLv2sk, options);
    auto sketch = *builder->SketchTrain(*(*table->GetColumn("K")),
                                        *(*table->GetColumn("Y")));
    const uint64_t f_hash = HashKey(Value("f"), trial + 1);
    bool has_f = false;
    for (const auto& e : sketch.entries) {
      if (e.key_hash == f_hash) has_f = true;
    }
    if (!has_f) ++absent;
  }
  EXPECT_NEAR(static_cast<double>(absent) / kTrials, 1.0 / 6.0, 0.05);
}

// --------------------------------------------------------------- PRISK ----

TEST(PriskTest, PrioritizesFrequentKeys) {
  // With weights = frequencies, the heavy key should almost always be
  // selected at level 1, unlike LV2SK's frequency-blind selection.
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (int i = 0; i < 95; ++i) {
    keys.push_back("heavy");
    targets.push_back(i);
  }
  for (int i = 0; i < 20; ++i) {
    keys.push_back("rare" + std::to_string(i));
    targets.push_back(1000 + i);
  }
  auto table = MakeTrain(keys, targets);
  int heavy_present = 0;
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    SketchOptions options = Options(5);
    options.hash_seed = static_cast<uint32_t>(trial + 1);
    auto builder = MakeSketchBuilder(SketchMethod::kPrisk, options);
    auto sketch = *builder->SketchTrain(*(*table->GetColumn("K")),
                                        *(*table->GetColumn("Y")));
    const uint64_t heavy_hash = HashKey(Value("heavy"), trial + 1);
    for (const auto& e : sketch.entries) {
      if (e.key_hash == heavy_hash) {
        ++heavy_present;
        break;
      }
    }
  }
  // Priority rank u/95 vs u/1: heavy key wins level-1 almost surely.
  EXPECT_GT(static_cast<double>(heavy_present) / kTrials, 0.95);
}

// ----------------------------------------------------------------- CSK ----

TEST(CskTest, FirstValuePerKeyOnTrainSide) {
  auto table = MakeTrain({"a", "a", "a", "b"}, {7, 8, 9, 1});
  auto sketch = *BuildTrain(SketchMethod::kCsk, *table, 10);
  ASSERT_EQ(sketch.size(), 2u);  // one entry per distinct key
  for (const auto& e : sketch.entries) {
    if (e.key_hash == HashKey(Value("a"), 0)) {
      EXPECT_EQ(e.value, Value(int64_t{7}));  // first seen
    }
  }
}

// --------------------------------------------------------------- INDSK ----

TEST(IndskTest, IndependentSamplingYieldsSmallOverlap) {
  // Two tables sharing 400 unique keys; INDSK sketches of size 64 overlap
  // on ~64*64/400 = ~10 keys, while TUPSK overlaps on ~64.
  std::vector<std::string> keys;
  std::vector<int64_t> values;
  for (int i = 0; i < 400; ++i) {
    keys.push_back("k" + std::to_string(i));
    values.push_back(i);
  }
  auto train = MakeTrain(keys, values);
  auto cand = *Table::FromColumns(
      {{"K", Column::MakeString(keys)}, {"Z", Column::MakeInt64(values)}});

  auto make_join_size = [&](SketchMethod method) {
    SketchOptions train_options = Options(64, /*sampling_seed=*/111);
    SketchOptions cand_options = Options(64, /*sampling_seed=*/222);
    auto train_builder = MakeSketchBuilder(method, train_options);
    auto cand_builder = MakeSketchBuilder(method, cand_options);
    auto s_train = *train_builder->SketchTrain(*(*train->GetColumn("K")),
                                               *(*train->GetColumn("Y")));
    auto s_cand = *cand_builder->SketchCandidate(*(*cand->GetColumn("K")),
                                                 *(*cand->GetColumn("Z")),
                                                 AggKind::kFirst);
    return JoinSketches(s_train, s_cand)->join_size;
  };
  const size_t ind_join = make_join_size(SketchMethod::kIndsk);
  const size_t tup_join = make_join_size(SketchMethod::kTupsk);
  EXPECT_EQ(tup_join, 64u);   // coordinated: every sampled key matches
  EXPECT_LT(ind_join, 30u);   // independent: quadratically fewer
}

// ---------------------------------------------------------- Sketch join ---

TEST(SketchJoinTest, RecoversExactPairsOfFullJoin) {
  // The sketch-join sample must be a subset of the true join pairs.
  Rng rng(23);
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  std::vector<std::string> cand_keys;
  std::vector<int64_t> cand_values;
  for (int i = 0; i < 300; ++i) {
    const int k = static_cast<int>(rng.NextBounded(60));
    keys.push_back("k" + std::to_string(k));
    targets.push_back(k * 10 + static_cast<int>(rng.NextBounded(3)));
  }
  for (int k = 0; k < 60; ++k) {
    cand_keys.push_back("k" + std::to_string(k));
    cand_values.push_back(k * 7);
  }
  auto train = MakeTrain(keys, targets);
  auto cand = *Table::FromColumns({{"K", Column::MakeString(cand_keys)},
                                   {"Z", Column::MakeInt64(cand_values)}});

  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, Options(64));
  auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                       *(*train->GetColumn("Y")));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                          *(*cand->GetColumn("Z")),
                                          AggKind::kFirst);
  auto joined = *JoinSketches(s_train, s_cand);
  EXPECT_EQ(joined.join_size, 64u);

  // Ground truth: the full join pairs target k*10+j with feature k*7.
  for (size_t i = 0; i < joined.sample.size(); ++i) {
    const int64_t y = joined.sample.y[i].int64();
    const int64_t x = joined.sample.x[i].int64();
    EXPECT_EQ(x, (y / 10) * 7) << "pair " << i;
  }
}

TEST(SketchJoinTest, TrainMultiplicityPreserved) {
  // Repeated train keys must produce repeated feature values in the sample.
  auto train = MakeTrain({"a", "a", "a", "b"}, {1, 2, 3, 4});
  auto cand = *Table::FromColumns(
      {{"K", Column::MakeString({"a", "b"})},
       {"Z", Column::MakeInt64({100, 200})}});
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, Options(10));
  auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                       *(*train->GetColumn("Y")));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                          *(*cand->GetColumn("Z")),
                                          AggKind::kFirst);
  auto joined = *JoinSketches(s_train, s_cand);
  EXPECT_EQ(joined.join_size, 4u);
  EXPECT_EQ(joined.matched_keys, 2u);
  size_t feature_100 = 0;
  for (const Value& x : joined.sample.x) {
    if (x == Value(int64_t{100})) ++feature_100;
  }
  EXPECT_EQ(feature_100, 3u);  // one per repeated "a" row
}

TEST(SketchJoinTest, RejectsTrainSketchOnRightSide) {
  auto train = MakeTrain({"a", "a"}, {1, 2});
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, Options(10));
  auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                       *(*train->GetColumn("Y")));
  EXPECT_FALSE(JoinSketches(s_train, s_train).ok());
}

TEST(SketchJoinTest, DisjointKeysGiveEmptyJoin) {
  auto train = MakeTrain({"a", "b"}, {1, 2});
  auto cand = *Table::FromColumns({{"K", Column::MakeString({"x", "y"})},
                                   {"Z", Column::MakeInt64({3, 4})}});
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, Options(10));
  auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                       *(*train->GetColumn("Y")));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                          *(*cand->GetColumn("Z")),
                                          AggKind::kFirst);
  auto joined = *JoinSketches(s_train, s_cand);
  EXPECT_EQ(joined.join_size, 0u);
  // Estimation on an empty join must fail cleanly via min_join_size.
  EXPECT_FALSE(
      EstimateSketchMI(s_train, s_cand, MIEstimatorKind::kMLE, {}, 1).ok());
}

TEST(SketchJoinTest, EstimateMatchesFullJoinOnCompleteSketch) {
  // Capacity >= table sizes: the sketch join IS the full join, so the MI
  // estimates must agree exactly.
  Rng rng(29);
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  std::vector<std::string> cand_keys;
  std::vector<int64_t> cand_values;
  for (int i = 0; i < 200; ++i) {
    const int k = static_cast<int>(rng.NextBounded(40));
    keys.push_back("k" + std::to_string(k));
    targets.push_back((k % 4) * 3 + static_cast<int>(rng.NextBounded(2)));
  }
  for (int k = 0; k < 40; ++k) {
    cand_keys.push_back("k" + std::to_string(k));
    cand_values.push_back(k % 4);
  }
  auto train = MakeTrain(keys, targets);
  auto cand = *Table::FromColumns({{"K", Column::MakeString(cand_keys)},
                                   {"Z", Column::MakeInt64(cand_values)}});

  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, Options(10000));
  auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                       *(*train->GetColumn("Y")));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                          *(*cand->GetColumn("Z")),
                                          AggKind::kFirst);
  auto sketch_mi =
      *EstimateSketchMI(s_train, s_cand, MIEstimatorKind::kMLE, {}, 1);
  ASSERT_EQ(sketch_mi.join_size, 200u);

  auto full = *LeftJoinAggregate(*train, "K", "Y", *cand, "K", "Z",
                                 {AggKind::kFirst, true, "X"});
  PairedSample full_sample;
  auto x_col = *full.table->GetColumn("X");
  auto y_col = *full.table->GetColumn("Y");
  for (size_t r = 0; r < full.table->num_rows(); ++r) {
    full_sample.x.push_back(x_col->GetValue(r));
    full_sample.y.push_back(y_col->GetValue(r));
  }
  const double full_mi = *EstimateMI(MIEstimatorKind::kMLE, full_sample);
  EXPECT_NEAR(sketch_mi.mi, full_mi, 1e-9);
}

TEST(SketchJoinTest, AutoEstimatorSelection) {
  // String target + numeric feature -> DC-KSG via the auto policy.
  Rng rng(31);
  std::vector<std::string> keys, targets;
  std::vector<std::string> cand_keys;
  std::vector<double> cand_values;
  for (int i = 0; i < 400; ++i) {
    const int k = static_cast<int>(rng.NextBounded(100));
    keys.push_back("k" + std::to_string(k));
    targets.push_back("cat" + std::to_string(k % 3));
  }
  for (int k = 0; k < 100; ++k) {
    cand_keys.push_back("k" + std::to_string(k));
    cand_values.push_back(static_cast<double>(k % 3) + rng.Gaussian(0, 0.1));
  }
  auto train = *Table::FromColumns({{"K", Column::MakeString(keys)},
                                    {"Y", Column::MakeString(targets)}});
  auto cand = *Table::FromColumns({{"K", Column::MakeString(cand_keys)},
                                   {"Z", Column::MakeDouble(cand_values)}});
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, Options(256));
  auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                       *(*train->GetColumn("Y")));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                          *(*cand->GetColumn("Z")),
                                          AggKind::kAvg);
  auto result = *EstimateSketchMIAuto(s_train, s_cand, {}, 10);
  EXPECT_EQ(result.estimator, MIEstimatorKind::kDCKSG);
  EXPECT_GT(result.mi, 0.5);  // strong dependence planted
}

// -------------------------------------------- Coordination across sides ---

class CoordinationTest : public testing::TestWithParam<SketchMethod> {};

TEST_P(CoordinationTest, CoordinatedMethodsAchieveFullJoinOnUniqueKeys) {
  // Unique keys on both sides, full overlap: every coordinated sketch pair
  // must recover ~n join samples (INDSK is excluded -- by design it can't).
  std::vector<std::string> keys;
  std::vector<int64_t> values;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back("k" + std::to_string(i));
    values.push_back(i);
  }
  auto train = MakeTrain(keys, values);
  auto cand = *Table::FromColumns(
      {{"K", Column::MakeString(keys)}, {"Z", Column::MakeInt64(values)}});
  auto builder = MakeSketchBuilder(GetParam(), Options(128));
  auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                       *(*train->GetColumn("Y")));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                          *(*cand->GetColumn("Z")),
                                          AggKind::kFirst);
  auto joined = *JoinSketches(s_train, s_cand);
  EXPECT_EQ(joined.join_size, 128u)
      << SketchMethodToString(GetParam())
      << " lost coordination on unique keys";
}

INSTANTIATE_TEST_SUITE_P(
    Coordinated, CoordinationTest,
    testing::Values(SketchMethod::kTupsk, SketchMethod::kLv2sk,
                    SketchMethod::kPrisk, SketchMethod::kCsk),
    [](const testing::TestParamInfo<SketchMethod>& info) {
      return SketchMethodToString(info.param);
    });

// ------------------------------------------------- PreparedTrainSketch ---

TEST(PreparedTrainSketchTest, JoinMatchesJoinSketchesForEveryMethod) {
  // The prepared path is an optimization, not a semantic change: for every
  // sketch variant the joined sample must be byte-identical to
  // JoinSketches, including train-side multiplicity and pair order.
  Rng rng(77);
  std::vector<std::string> train_keys, cand_keys;
  std::vector<int64_t> train_values, cand_values;
  for (int i = 0; i < 1500; ++i) {
    train_keys.push_back("k" + std::to_string(rng.NextBounded(300)));
    train_values.push_back(static_cast<int64_t>(rng.NextBounded(40)));
  }
  for (int i = 0; i < 350; ++i) {
    cand_keys.push_back("k" + std::to_string(i));
    cand_values.push_back(static_cast<int64_t>(rng.NextBounded(40)));
  }
  auto train = MakeTrain(train_keys, train_values);
  auto cand = *Table::FromColumns({{"K", Column::MakeString(cand_keys)},
                                   {"Z", Column::MakeInt64(cand_values)}});
  for (SketchMethod method : kAllMethods) {
    auto builder = MakeSketchBuilder(method, Options(96));
    auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                         *(*train->GetColumn("Y")));
    auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                            *(*cand->GetColumn("Z")),
                                            AggKind::kAvg);
    auto plain = *JoinSketches(s_train, s_cand);
    auto prepared = PreparedTrainSketch::Create(s_train);
    ASSERT_TRUE(prepared.ok()) << SketchMethodToString(method);
    auto fast = *prepared->Join(s_cand);
    ASSERT_EQ(fast.join_size, plain.join_size) << SketchMethodToString(method);
    EXPECT_EQ(fast.matched_keys, plain.matched_keys);
    for (size_t i = 0; i < plain.sample.size(); ++i) {
      ASSERT_EQ(fast.sample.x[i], plain.sample.x[i])
          << SketchMethodToString(method) << " pair " << i;
      ASSERT_EQ(fast.sample.y[i], plain.sample.y[i])
          << SketchMethodToString(method) << " pair " << i;
    }
  }
}

TEST(PreparedTrainSketchTest, EstimateMatchesUnpreparedOverloads) {
  std::vector<std::string> keys;
  std::vector<int64_t> values;
  for (int i = 0; i < 600; ++i) {
    keys.push_back("k" + std::to_string(i % 150));
    values.push_back(static_cast<int64_t>(i % 6));
  }
  auto train = MakeTrain(keys, values);
  auto cand = *Table::FromColumns(
      {{"K", Column::MakeString(keys)}, {"Z", Column::MakeInt64(values)}});
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, Options(64));
  auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                       *(*train->GetColumn("Y")));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                          *(*cand->GetColumn("Z")),
                                          AggKind::kFirst);
  auto prepared = *PreparedTrainSketch::Create(s_train);
  auto plain = *EstimateSketchMI(s_train, s_cand, MIEstimatorKind::kMLE);
  auto fast = *EstimateSketchMI(prepared, s_cand, MIEstimatorKind::kMLE);
  EXPECT_EQ(plain.mi, fast.mi);
  EXPECT_EQ(plain.join_size, fast.join_size);
  auto plain_auto = *EstimateSketchMIAuto(s_train, s_cand);
  auto fast_auto = *EstimateSketchMIAuto(prepared, s_cand);
  EXPECT_EQ(plain_auto.mi, fast_auto.mi);
  EXPECT_EQ(plain_auto.estimator, fast_auto.estimator);
}

TEST(PreparedTrainSketchTest, EmptyTrainSketchJoinsEmpty) {
  Sketch train;
  train.side = SketchSide::kTrain;
  auto prepared = PreparedTrainSketch::Create(train);
  ASSERT_TRUE(prepared.ok());
  Sketch cand;
  cand.side = SketchSide::kCandidate;
  cand.entries.push_back(SketchEntry{42, 0.1, Value(int64_t{1})});
  auto joined = prepared->Join(cand);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->join_size, 0u);
  EXPECT_EQ(joined->matched_keys, 0u);
}

TEST(PreparedTrainSketchTest, RejectsUnsortedTrainEntries) {
  Sketch train;
  train.side = SketchSide::kTrain;
  // Same key hash in two non-adjacent runs violates the sort invariant.
  train.entries.push_back(SketchEntry{7, 0.1, Value(int64_t{1})});
  train.entries.push_back(SketchEntry{3, 0.2, Value(int64_t{2})});
  train.entries.push_back(SketchEntry{7, 0.3, Value(int64_t{3})});
  auto prepared = PreparedTrainSketch::Create(train);
  EXPECT_FALSE(prepared.ok());
  EXPECT_TRUE(prepared.status().IsInvalidArgument());
}

TEST(PreparedTrainSketchTest, RejectsDuplicateCandidateKeys) {
  Sketch train;
  train.side = SketchSide::kTrain;
  train.entries.push_back(SketchEntry{5, 0.1, Value(int64_t{1})});
  auto prepared = *PreparedTrainSketch::Create(train);
  Sketch cand;
  cand.side = SketchSide::kCandidate;
  cand.entries.push_back(SketchEntry{5, 0.1, Value(int64_t{1})});
  cand.entries.push_back(SketchEntry{5, 0.2, Value(int64_t{2})});
  auto joined = prepared.Join(cand);
  EXPECT_FALSE(joined.ok());
  EXPECT_TRUE(joined.status().IsInvalidArgument());
  // Duplicate candidate keys are rejected even when they match no train
  // entry — parity with the JoinSketches overload.
  Sketch unmatched_dupes;
  unmatched_dupes.side = SketchSide::kCandidate;
  unmatched_dupes.entries.push_back(SketchEntry{9, 0.1, Value(int64_t{1})});
  unmatched_dupes.entries.push_back(SketchEntry{9, 0.2, Value(int64_t{2})});
  EXPECT_FALSE(prepared.Join(unmatched_dupes).ok());
  EXPECT_FALSE(JoinSketches(prepared.sketch(), unmatched_dupes).ok());
  // And a train sketch on the right is still rejected.
  Sketch wrong_side;
  wrong_side.side = SketchSide::kTrain;
  EXPECT_FALSE(prepared.Join(wrong_side).ok());
}

// --------------------------------------------- PreparedCandidateSketch ---

TEST(PreparedCandidateSketchTest, JoinMatchesJoinSketchesForEveryMethod) {
  // The symmetric optimization to PreparedTrainSketch: preparing the
  // candidate side must not change join semantics for any sketch variant.
  Rng rng(78);
  std::vector<std::string> train_keys, cand_keys;
  std::vector<int64_t> train_values, cand_values;
  for (int i = 0; i < 1500; ++i) {
    train_keys.push_back("k" + std::to_string(rng.NextBounded(300)));
    train_values.push_back(static_cast<int64_t>(rng.NextBounded(40)));
  }
  for (int i = 0; i < 350; ++i) {
    cand_keys.push_back("k" + std::to_string(i));
    cand_values.push_back(static_cast<int64_t>(rng.NextBounded(40)));
  }
  auto train = MakeTrain(train_keys, train_values);
  auto cand = *Table::FromColumns({{"K", Column::MakeString(cand_keys)},
                                   {"Z", Column::MakeInt64(cand_values)}});
  for (SketchMethod method : kAllMethods) {
    auto builder = MakeSketchBuilder(method, Options(96));
    auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                         *(*train->GetColumn("Y")));
    auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                            *(*cand->GetColumn("Z")),
                                            AggKind::kAvg);
    auto plain = *JoinSketches(s_train, s_cand);
    auto prepared = PreparedCandidateSketch::Create(s_cand);
    ASSERT_TRUE(prepared.ok()) << SketchMethodToString(method);
    auto fast = *prepared->Join(s_train);
    ASSERT_EQ(fast.join_size, plain.join_size) << SketchMethodToString(method);
    EXPECT_EQ(fast.matched_keys, plain.matched_keys);
    for (size_t i = 0; i < plain.sample.size(); ++i) {
      ASSERT_EQ(fast.sample.x[i], plain.sample.x[i])
          << SketchMethodToString(method) << " pair " << i;
      ASSERT_EQ(fast.sample.y[i], plain.sample.y[i])
          << SketchMethodToString(method) << " pair " << i;
    }
  }
}

TEST(PreparedCandidateSketchTest, EstimateMatchesUnpreparedOverloads) {
  std::vector<std::string> keys;
  std::vector<int64_t> values;
  for (int i = 0; i < 600; ++i) {
    keys.push_back("k" + std::to_string(i % 150));
    values.push_back(static_cast<int64_t>(i % 6));
  }
  auto train = MakeTrain(keys, values);
  auto cand = *Table::FromColumns(
      {{"K", Column::MakeString(keys)}, {"Z", Column::MakeInt64(values)}});
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, Options(64));
  auto s_train = *builder->SketchTrain(*(*train->GetColumn("K")),
                                       *(*train->GetColumn("Y")));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn("K")),
                                          *(*cand->GetColumn("Z")),
                                          AggKind::kFirst);
  auto prepared = *PreparedCandidateSketch::Create(s_cand);
  auto plain = *EstimateSketchMI(s_train, s_cand, MIEstimatorKind::kMLE);
  auto fast = *EstimateSketchMI(s_train, prepared, MIEstimatorKind::kMLE);
  EXPECT_EQ(plain.mi, fast.mi);
  EXPECT_EQ(plain.join_size, fast.join_size);
  auto plain_auto = *EstimateSketchMIAuto(s_train, s_cand);
  auto fast_auto = *EstimateSketchMIAuto(s_train, prepared);
  EXPECT_EQ(plain_auto.mi, fast_auto.mi);
  EXPECT_EQ(plain_auto.estimator, fast_auto.estimator);
}

TEST(PreparedCandidateSketchTest, RejectsBadInputs) {
  // Train-side sketches cannot be prepared as candidates.
  Sketch train_side;
  train_side.side = SketchSide::kTrain;
  EXPECT_FALSE(PreparedCandidateSketch::Create(train_side).ok());
  // Duplicate keys violate the aggregated-candidate invariant.
  Sketch dupes;
  dupes.side = SketchSide::kCandidate;
  dupes.entries.push_back(SketchEntry{5, 0.1, Value(int64_t{1})});
  dupes.entries.push_back(SketchEntry{5, 0.2, Value(int64_t{2})});
  EXPECT_FALSE(PreparedCandidateSketch::Create(dupes).ok());
  // Seed mismatch at join time fails like JoinSketches does.
  Sketch cand;
  cand.side = SketchSide::kCandidate;
  cand.hash_seed = 3;
  cand.entries.push_back(SketchEntry{5, 0.1, Value(int64_t{1})});
  auto prepared = *PreparedCandidateSketch::Create(cand);
  Sketch train;
  train.side = SketchSide::kTrain;
  train.hash_seed = 4;
  train.entries.push_back(SketchEntry{5, 0.2, Value(int64_t{9})});
  auto joined = prepared.Join(train);
  ASSERT_FALSE(joined.ok());
  EXPECT_TRUE(joined.status().IsInvalidArgument());
  train.hash_seed = 3;
  auto ok_join = prepared.Join(train);
  ASSERT_TRUE(ok_join.ok()) << ok_join.status();
  EXPECT_EQ(ok_join->join_size, 1u);
}

TEST(SketchJoinTest, MatchedKeysDistinctEvenForUnsortedTrainSketch) {
  // JoinSketches (unlike the prepared path) accepts train sketches that
  // violate the sorted-by-key-hash invariant, e.g. hand-built ones; the
  // distinct-key count must not rely on equal hashes being adjacent.
  Sketch train;
  train.side = SketchSide::kTrain;
  train.entries.push_back(SketchEntry{7, 0.1, Value(int64_t{1})});
  train.entries.push_back(SketchEntry{3, 0.2, Value(int64_t{2})});
  train.entries.push_back(SketchEntry{7, 0.3, Value(int64_t{3})});
  Sketch cand;
  cand.side = SketchSide::kCandidate;
  cand.entries.push_back(SketchEntry{3, 0.1, Value(int64_t{30})});
  cand.entries.push_back(SketchEntry{7, 0.2, Value(int64_t{70})});
  auto joined = JoinSketches(train, cand);
  ASSERT_TRUE(joined.ok()) << joined.status();
  EXPECT_EQ(joined->join_size, 3u);
  EXPECT_EQ(joined->matched_keys, 2u);
}

}  // namespace
}  // namespace joinmi
