// Unit tests for src/join: aggregators (Example 2 of the paper), group-by,
// and the left-outer join-aggregation query (Section III-B).

#include <gtest/gtest.h>

#include "src/join/aggregators.h"
#include "src/join/group_by.h"
#include "src/join/left_join.h"

namespace joinmi {
namespace {

std::vector<Value> Ints(std::initializer_list<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.emplace_back(x);
  return out;
}

// ----------------------------------------------------------- Aggregators --

TEST(AggregatorsTest, KindParsingRoundTrip) {
  for (AggKind kind : {AggKind::kFirst, AggKind::kAvg, AggKind::kSum,
                       AggKind::kMin, AggKind::kMax, AggKind::kCount,
                       AggKind::kMode, AggKind::kMedian}) {
    auto parsed = AggKindFromString(AggKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(*AggKindFromString("MEAN"), AggKind::kAvg);
  EXPECT_FALSE(AggKindFromString("bogus").ok());
}

TEST(AggregatorsTest, OutputTypes) {
  EXPECT_EQ(*AggOutputType(AggKind::kCount, DataType::kString),
            DataType::kInt64);
  EXPECT_EQ(*AggOutputType(AggKind::kAvg, DataType::kInt64),
            DataType::kDouble);
  EXPECT_EQ(*AggOutputType(AggKind::kSum, DataType::kInt64),
            DataType::kInt64);
  EXPECT_EQ(*AggOutputType(AggKind::kMode, DataType::kString),
            DataType::kString);
  EXPECT_FALSE(AggOutputType(AggKind::kAvg, DataType::kString).ok());
  EXPECT_FALSE(AggOutputType(AggKind::kMedian, DataType::kString).ok());
}

TEST(AggregatorsTest, NumericAggregates) {
  const auto group = Ints({2, 2, 5});
  EXPECT_EQ(*Aggregate(AggKind::kAvg, group), Value(3.0));
  EXPECT_EQ(*Aggregate(AggKind::kSum, group), Value(int64_t{9}));
  EXPECT_EQ(*Aggregate(AggKind::kMin, group), Value(int64_t{2}));
  EXPECT_EQ(*Aggregate(AggKind::kMax, group), Value(int64_t{5}));
  EXPECT_EQ(*Aggregate(AggKind::kCount, group), Value(int64_t{3}));
  EXPECT_EQ(*Aggregate(AggKind::kMode, group), Value(int64_t{2}));
  EXPECT_EQ(*Aggregate(AggKind::kMedian, group), Value(2.0));
  EXPECT_EQ(*Aggregate(AggKind::kFirst, group), Value(int64_t{2}));
}

TEST(AggregatorsTest, MedianEvenSizeMidpoint) {
  EXPECT_EQ(*Aggregate(AggKind::kMedian, Ints({1, 2, 3, 10})), Value(2.5));
}

TEST(AggregatorsTest, ModeFirstSeenTieBreak) {
  // 7 and 9 both appear twice; 7 was seen first.
  EXPECT_EQ(*Aggregate(AggKind::kMode, Ints({7, 9, 9, 7, 3})),
            Value(int64_t{7}));
}

TEST(AggregatorsTest, StringAggregates) {
  const std::vector<Value> group = {Value("b"), Value("a"), Value("b")};
  EXPECT_EQ(*Aggregate(AggKind::kMode, group), Value("b"));
  EXPECT_EQ(*Aggregate(AggKind::kMin, group), Value("a"));
  EXPECT_EQ(*Aggregate(AggKind::kMax, group), Value("b"));
  EXPECT_EQ(*Aggregate(AggKind::kCount, group), Value(int64_t{3}));
  EXPECT_EQ(*Aggregate(AggKind::kFirst, group), Value("b"));
  EXPECT_FALSE(Aggregate(AggKind::kAvg, group).ok());
}

TEST(AggregatorsTest, SumPreservesDoubleType) {
  const std::vector<Value> group = {Value(1.5), Value(2.0)};
  const Value sum = *Aggregate(AggKind::kSum, group);
  EXPECT_TRUE(sum.is_double());
  EXPECT_EQ(sum.dbl(), 3.5);
}

TEST(AggregatorsTest, EmptyGroupAndNullsRejected) {
  EXPECT_FALSE(Aggregate(AggKind::kAvg, {}).ok());
  AggregatorState state(AggKind::kAvg);
  EXPECT_FALSE(state.Update(Value::Null()).ok());
  EXPECT_FALSE(state.Finish().ok());
}

TEST(AggregatorsTest, StateResetClearsEverything) {
  AggregatorState state(AggKind::kMedian);
  ASSERT_TRUE(state.Update(Value(int64_t{5})).ok());
  state.Reset();
  EXPECT_EQ(state.count(), 0u);
  ASSERT_TRUE(state.Update(Value(int64_t{1})).ok());
  EXPECT_EQ(*state.Finish(), Value(1.0));
}

// --------------------------------------------------------------- GroupBy --

TEST(GroupByTest, GroupsInFirstAppearanceOrder) {
  auto keys = Column::MakeString({"b", "a", "b", "c", "a"});
  auto groups = GroupRowsByKey(*keys);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 3u);
  EXPECT_EQ((*groups)[0].key, Value("b"));
  EXPECT_EQ((*groups)[0].rows, (std::vector<size_t>{0, 2}));
  EXPECT_EQ((*groups)[1].key, Value("a"));
  EXPECT_EQ((*groups)[1].rows, (std::vector<size_t>{1, 4}));
  EXPECT_EQ((*groups)[2].key, Value("c"));
}

TEST(GroupByTest, SkipsNullKeys) {
  auto keys = Column::MakeString({"a", "b", "a"}, {true, false, true});
  auto groups = GroupRowsByKey(*keys);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->size(), 1u);
  EXPECT_EQ((*groups)[0].rows.size(), 2u);
}

TEST(GroupByTest, PaperExample2) {
  // T_cand[K] = [a,b,b,b,c,c,c], T_cand[Z] = [1,2,2,5,0,3,3].
  auto table = *Table::FromColumns(
      {{"K", Column::MakeString({"a", "b", "b", "b", "c", "c", "c"})},
       {"Z", Column::MakeInt64({1, 2, 2, 5, 0, 3, 3})}});
  // AVG: {a->1, b->3, c->2}.
  auto avg = *GroupByAggregate(*table, "K", "Z", AggKind::kAvg);
  ASSERT_EQ(avg->num_rows(), 3u);
  EXPECT_EQ((*avg->GetColumn("avg_Z"))->DoubleAt(0), 1.0);
  EXPECT_EQ((*avg->GetColumn("avg_Z"))->DoubleAt(1), 3.0);
  EXPECT_EQ((*avg->GetColumn("avg_Z"))->DoubleAt(2), 2.0);
  // MODE: {a->1, b->2, c->3}.
  auto mode = *GroupByAggregate(*table, "K", "Z", AggKind::kMode, "m");
  EXPECT_EQ((*mode->GetColumn("m"))->Int64At(0), 1);
  EXPECT_EQ((*mode->GetColumn("m"))->Int64At(1), 2);
  EXPECT_EQ((*mode->GetColumn("m"))->Int64At(2), 3);
  // COUNT: {a->1, b->3, c->3}.
  auto count = *GroupByAggregate(*table, "K", "Z", AggKind::kCount, "c");
  EXPECT_EQ((*count->GetColumn("c"))->Int64At(0), 1);
  EXPECT_EQ((*count->GetColumn("c"))->Int64At(1), 3);
  EXPECT_EQ((*count->GetColumn("c"))->Int64At(2), 3);
}

TEST(GroupByTest, DropsAllNullValueGroups) {
  auto table = *Table::FromColumns(
      {{"K", Column::MakeString({"a", "b"})},
       {"Z", Column::MakeInt64({1, 0}, {true, false})}});
  auto agg = *GroupByAggregate(*table, "K", "Z", AggKind::kSum);
  EXPECT_EQ(agg->num_rows(), 1u);
  EXPECT_EQ((*agg->GetColumn("K"))->StringAt(0), "a");
}

TEST(GroupByTest, KeyFrequencies) {
  auto keys = Column::MakeString({"a", "b", "a", "a"});
  const KeyFrequencies freq = CountKeyFrequencies(*keys);
  EXPECT_EQ(freq.total_rows, 4u);
  EXPECT_EQ(freq.distinct_keys(), 2u);
}

// --------------------------------------------------------- LeftJoin -----

std::shared_ptr<Table> TrainTable() {
  // K_Y = [a, a, b, c], Y = [10, 20, 30, 40]   (Example 2's left table).
  return *Table::FromColumns(
      {{"K", Column::MakeString({"a", "a", "b", "c"})},
       {"Y", Column::MakeInt64({10, 20, 30, 40})}});
}

std::shared_ptr<Table> CandTable() {
  // K_Z = [a,b,b,b,c,c,c], Z = [1,2,2,5,0,3,3].
  return *Table::FromColumns(
      {{"K", Column::MakeString({"a", "b", "b", "b", "c", "c", "c"})},
       {"Z", Column::MakeInt64({1, 2, 2, 5, 0, 3, 3})}});
}

TEST(LeftJoinTest, PaperExample2JoinColumn) {
  // AVG featurization should produce X = [1, 1, 3, 2].
  auto result = LeftJoinAggregate(*TrainTable(), "K", "Y", *CandTable(), "K",
                                  "Z", {});
  ASSERT_TRUE(result.ok());
  const auto& table = result->table;
  ASSERT_EQ(table->num_rows(), 4u);
  auto x = *table->GetColumn("X");
  EXPECT_EQ(x->DoubleAt(0), 1.0);
  EXPECT_EQ(x->DoubleAt(1), 1.0);
  EXPECT_EQ(x->DoubleAt(2), 3.0);
  EXPECT_EQ(x->DoubleAt(3), 2.0);
  // Left multiplicity preserved: Y column intact.
  auto y = *table->GetColumn("Y");
  EXPECT_EQ(y->Int64At(0), 10);
  EXPECT_EQ(y->Int64At(1), 20);
  EXPECT_EQ(result->matched_rows, 4u);
  EXPECT_EQ(result->unmatched_rows, 0u);
}

TEST(LeftJoinTest, ModeAndCountFeaturizations) {
  JoinAggregateOptions mode_options;
  mode_options.agg = AggKind::kMode;
  auto mode = *LeftJoinAggregate(*TrainTable(), "K", "Y", *CandTable(), "K",
                                 "Z", mode_options);
  auto xm = *mode.table->GetColumn("X");
  // MODE: X = [1, 1, 2, 3].
  EXPECT_EQ(xm->Int64At(0), 1);
  EXPECT_EQ(xm->Int64At(1), 1);
  EXPECT_EQ(xm->Int64At(2), 2);
  EXPECT_EQ(xm->Int64At(3), 3);

  JoinAggregateOptions count_options;
  count_options.agg = AggKind::kCount;
  auto count = *LeftJoinAggregate(*TrainTable(), "K", "Y", *CandTable(), "K",
                                  "Z", count_options);
  auto xc = *count.table->GetColumn("X");
  // COUNT: X = [1, 1, 3, 3].
  EXPECT_EQ(xc->Int64At(0), 1);
  EXPECT_EQ(xc->Int64At(1), 1);
  EXPECT_EQ(xc->Int64At(2), 3);
  EXPECT_EQ(xc->Int64At(3), 3);
}

TEST(LeftJoinTest, UnmatchedRowsDroppedByDefault) {
  auto train = *Table::FromColumns(
      {{"K", Column::MakeString({"a", "zzz"})},
       {"Y", Column::MakeInt64({1, 2})}});
  auto result = *LeftJoinAggregate(*train, "K", "Y", *CandTable(), "K", "Z",
                                   {});
  EXPECT_EQ(result.table->num_rows(), 1u);
  EXPECT_EQ(result.matched_rows, 1u);
  EXPECT_EQ(result.unmatched_rows, 1u);
}

TEST(LeftJoinTest, UnmatchedRowsKeptAsNullsWhenRequested) {
  auto train = *Table::FromColumns(
      {{"K", Column::MakeString({"a", "zzz"})},
       {"Y", Column::MakeInt64({1, 2})}});
  JoinAggregateOptions options;
  options.drop_unmatched = false;
  auto result = *LeftJoinAggregate(*train, "K", "Y", *CandTable(), "K", "Z",
                                   options);
  EXPECT_EQ(result.table->num_rows(), 2u);
  EXPECT_TRUE((*result.table->GetColumn("X"))->GetValue(1).is_null());
}

TEST(LeftJoinTest, NullKeysAndTargetsSkipped) {
  auto train = *Table::FromColumns(
      {{"K", Column::MakeString({"a", "a", "b"}, {true, false, true})},
       {"Y", Column::MakeInt64({1, 2, 3}, {true, true, false})}});
  auto result = *LeftJoinAggregate(*train, "K", "Y", *CandTable(), "K", "Z",
                                   {});
  // Row 1 has a null key, row 2 a null target; only row 0 survives.
  EXPECT_EQ(result.table->num_rows(), 1u);
}

TEST(LeftJoinTest, CustomFeatureName) {
  JoinAggregateOptions options;
  options.feature_name = "AVG_Z";
  auto result = *LeftJoinAggregate(*TrainTable(), "K", "Y", *CandTable(), "K",
                                   "Z", options);
  EXPECT_TRUE(result.table->schema().HasField("AVG_Z"));
}

TEST(LeftJoinTest, MissingColumnsError) {
  EXPECT_FALSE(
      LeftJoinAggregate(*TrainTable(), "nope", "Y", *CandTable(), "K", "Z", {})
          .ok());
  EXPECT_FALSE(
      LeftJoinAggregate(*TrainTable(), "K", "Y", *CandTable(), "K", "nope", {})
          .ok());
}

TEST(EquiJoinSizeTest, CountsMatchingPairs) {
  auto left = Column::MakeString({"a", "a", "b", "d"});
  auto right = Column::MakeString({"a", "b", "b", "b", "c"});
  // a matches 1 right row twice (2), b matches 3 right rows once (3).
  EXPECT_EQ(*EquiJoinSize(*left, *right), 5u);
  // Empty overlap.
  auto none = Column::MakeString({"zz"});
  EXPECT_EQ(*EquiJoinSize(*none, *right), 0u);
}

}  // namespace
}  // namespace joinmi
