// Tests for the public API (src/core): configuration validation, FullJoinMI
// vs SketchJoinMI agreement, and the reusable JoinMIQuery object.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/join_mi.h"
#include "src/synthetic/pipeline.h"

namespace joinmi {
namespace {

// ------------------------------------------------------------------ Config

TEST(ConfigTest, DefaultsValidate) {
  EXPECT_TRUE(JoinMIConfig{}.Validate().ok());
}

TEST(ConfigTest, RejectsBadRanges) {
  JoinMIConfig config;
  config.sketch_capacity = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = JoinMIConfig{};
  config.mi_options.k = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = JoinMIConfig{};
  config.mi_options.laplace_alpha = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = JoinMIConfig{};
  config.mi_options.perturb_sigma = -0.1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ConfigTest, ToStringMentionsKeyKnobs) {
  JoinMIConfig config;
  config.estimator = MIEstimatorKind::kMLE;
  const std::string s = config.ToString();
  EXPECT_NE(s.find("TUPSK"), std::string::npos);
  EXPECT_NE(s.find("MLE"), std::string::npos);
  JoinMIConfig auto_config;
  EXPECT_NE(auto_config.ToString().find("auto"), std::string::npos);
}

TEST(ConfigTest, SketchOptionsSliceMatches) {
  JoinMIConfig config;
  config.sketch_capacity = 77;
  config.hash_seed = 3;
  config.sampling_seed = 999;
  const SketchOptions options = config.sketch_options();
  EXPECT_EQ(options.capacity, 77u);
  EXPECT_EQ(options.hash_seed, 3u);
  EXPECT_EQ(options.sampling_seed, 999u);
}

// ----------------------------------------------------------- Full vs sketch

SyntheticDataset MakeDataset(uint64_t seed, size_t rows = 5000) {
  SyntheticSpec spec;
  spec.distribution = SyntheticDistribution::kTrinomial;
  spec.m = 64;
  spec.num_rows = rows;
  spec.key_scheme = KeyScheme::kKeyInd;
  spec.seed = seed;
  return *GenerateSyntheticDataset(spec);
}

TEST(JoinMITest, SketchApproximatesFullJoin) {
  const SyntheticDataset dataset = MakeDataset(51);
  JoinMIConfig config;
  config.sketch_capacity = 1024;
  config.aggregation = AggKind::kFirst;
  config.estimator = MIEstimatorKind::kMLE;
  const JoinMIQuerySpec spec{"K", "Y", "K", "Z"};
  auto full = *FullJoinMI(*dataset.tables.train, *dataset.tables.cand, spec,
                          config);
  auto sketched = *SketchJoinMI(*dataset.tables.train, *dataset.tables.cand,
                                spec, config);
  EXPECT_FALSE(full.sketched);
  EXPECT_TRUE(sketched.sketched);
  EXPECT_EQ(full.sample_size, 5000u);
  EXPECT_EQ(sketched.sample_size, 1024u);
  // n = 1024 of N = 5000: estimates should agree within estimator noise.
  EXPECT_NEAR(sketched.mi, full.mi, 0.35);
}

TEST(JoinMITest, SketchEqualsFullWhenCapacityCoversTable) {
  const SyntheticDataset dataset = MakeDataset(53, 800);
  JoinMIConfig config;
  config.sketch_capacity = 10000;
  config.aggregation = AggKind::kFirst;
  config.estimator = MIEstimatorKind::kMLE;
  const JoinMIQuerySpec spec{"K", "Y", "K", "Z"};
  auto full = *FullJoinMI(*dataset.tables.train, *dataset.tables.cand, spec,
                          config);
  auto sketched = *SketchJoinMI(*dataset.tables.train, *dataset.tables.cand,
                                spec, config);
  EXPECT_EQ(sketched.sample_size, full.sample_size);
  EXPECT_NEAR(sketched.mi, full.mi, 1e-9);
}

TEST(JoinMITest, AutoEstimatorSelectedFromJoinedTypes) {
  const SyntheticDataset dataset = MakeDataset(57);
  JoinMIConfig config;
  config.sketch_capacity = 512;
  config.aggregation = AggKind::kFirst;
  const JoinMIQuerySpec spec{"K", "Y", "K", "Z"};
  // Trinomial X and Y are both int64 -> numeric x numeric -> MixedKSG.
  auto full = *FullJoinMI(*dataset.tables.train, *dataset.tables.cand, spec,
                          config);
  EXPECT_EQ(full.estimator, MIEstimatorKind::kMixedKSG);
  auto sketched = *SketchJoinMI(*dataset.tables.train, *dataset.tables.cand,
                                spec, config);
  EXPECT_EQ(sketched.estimator, MIEstimatorKind::kMixedKSG);
}

TEST(JoinMITest, MinJoinSizeGuard) {
  const SyntheticDataset dataset = MakeDataset(59, 200);
  JoinMIConfig config;
  config.sketch_capacity = 64;
  config.aggregation = AggKind::kFirst;
  config.min_join_size = 100;  // sketch join is at most 64
  const JoinMIQuerySpec spec{"K", "Y", "K", "Z"};
  auto sketched = SketchJoinMI(*dataset.tables.train, *dataset.tables.cand,
                               spec, config);
  EXPECT_FALSE(sketched.ok());
  EXPECT_TRUE(sketched.status().IsOutOfRange());
}

TEST(JoinMITest, InvalidConfigRejectedEverywhere) {
  const SyntheticDataset dataset = MakeDataset(61, 100);
  JoinMIConfig config;
  config.sketch_capacity = 0;
  const JoinMIQuerySpec spec{"K", "Y", "K", "Z"};
  EXPECT_FALSE(
      FullJoinMI(*dataset.tables.train, *dataset.tables.cand, spec, config)
          .ok());
  EXPECT_FALSE(
      SketchJoinMI(*dataset.tables.train, *dataset.tables.cand, spec, config)
          .ok());
  EXPECT_FALSE(
      JoinMIQuery::Create(*dataset.tables.train, "K", "Y", config).ok());
}

TEST(JoinMITest, MissingColumnsSurfaceAsErrors) {
  const SyntheticDataset dataset = MakeDataset(63, 100);
  const JoinMIQuerySpec bad_key{"missing", "Y", "K", "Z"};
  EXPECT_FALSE(
      FullJoinMI(*dataset.tables.train, *dataset.tables.cand, bad_key, {})
          .ok());
  const JoinMIQuerySpec bad_value{"K", "Y", "K", "missing"};
  EXPECT_FALSE(
      SketchJoinMI(*dataset.tables.train, *dataset.tables.cand, bad_value, {})
          .ok());
}

// ----------------------------------------------------------- JoinMIQuery --

TEST(JoinMIQueryTest, ReusableAcrossCandidates) {
  // One train sketch probed against two candidates; the informative one
  // must score higher.
  Rng rng(67);
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (int i = 0; i < 2000; ++i) {
    const int k = static_cast<int>(rng.NextBounded(400));
    keys.push_back("k" + std::to_string(k));
    targets.push_back(k % 8);
  }
  auto train = *Table::FromColumns({{"K", Column::MakeString(keys)},
                                    {"Y", Column::MakeInt64(targets)}});
  std::vector<std::string> cand_keys;
  std::vector<int64_t> informative, noise;
  Rng noise_rng(68);
  for (int k = 0; k < 400; ++k) {
    cand_keys.push_back("k" + std::to_string(k));
    informative.push_back(k % 8);
    noise.push_back(static_cast<int64_t>(noise_rng.NextBounded(8)));
  }
  auto cand_good = *Table::FromColumns(
      {{"K", Column::MakeString(cand_keys)},
       {"Z", Column::MakeInt64(informative)}});
  auto cand_noise = *Table::FromColumns(
      {{"K", Column::MakeString(cand_keys)}, {"Z", Column::MakeInt64(noise)}});

  JoinMIConfig config;
  config.sketch_capacity = 512;
  config.aggregation = AggKind::kFirst;
  config.estimator = MIEstimatorKind::kMLE;
  auto query = *JoinMIQuery::Create(*train, "K", "Y", config);
  EXPECT_EQ(query.train_sketch().capacity, 512u);

  auto good = *query.EstimateTable(*cand_good, "K", "Z");
  auto bad = *query.EstimateTable(*cand_noise, "K", "Z");
  EXPECT_GT(good.mi, bad.mi + 0.5);
}

TEST(JoinMIQueryTest, PrebuiltCandidateSketchPath) {
  const SyntheticDataset dataset = MakeDataset(71, 1000);
  JoinMIConfig config;
  config.sketch_capacity = 256;
  config.aggregation = AggKind::kFirst;
  config.estimator = MIEstimatorKind::kMLE;
  auto query = *JoinMIQuery::Create(*dataset.tables.train, "K", "Y", config);
  auto sketch = *query.SketchCandidate(*dataset.tables.cand, "K", "Z");
  auto via_sketch = *query.Estimate(sketch);
  auto via_table = *query.EstimateTable(*dataset.tables.cand, "K", "Z");
  EXPECT_EQ(via_sketch.mi, via_table.mi);
  EXPECT_EQ(via_sketch.sample_size, via_table.sample_size);
}

}  // namespace
}  // namespace joinmi
