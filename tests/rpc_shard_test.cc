// End-to-end tests for networked shard serving, over real loopback
// sockets: ShardServer processes-in-miniature (in-process instances, real
// TCP) serve shard files, RpcShardClient dials them, and the acceptance
// gate is bit-identical rankings against LocalShardClient for K in
// {1, 2, 7}, both partition policies, and any thread count. Availability:
// killing one shard fails a strict-mode query with a clear status, while
// a degraded-mode query returns the surviving shards' correctly merged
// top-k with the outage recorded in shard_failures.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/discovery/replica_router.h"
#include "src/discovery/rpc_messages.h"
#include "src/discovery/rpc_shard_client.h"
#include "src/discovery/search.h"
#include "src/discovery/shard_server.h"
#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/discovery/topk_merge.h"
#include "src/sketch/serialize.h"
#include "src/table/table.h"

namespace joinmi {
namespace {

std::shared_ptr<Table> MakeTwoColumnTable(const std::string& key_name,
                                          std::vector<std::string> keys,
                                          const std::string& value_name,
                                          std::vector<int64_t> values) {
  return *Table::FromColumns(
      {{key_name, Column::MakeString(std::move(keys))},
       {value_name, Column::MakeInt64(std::move(values))}});
}

struct Universe {
  std::shared_ptr<Table> base;
  TableRepository repository;
};

// Same construction as sharded_index_test: graded relevance plus exact
// twins, so the cross-shard (and now cross-socket) tie-breaks matter.
Universe MakeUniverse() {
  Universe universe;
  Rng rng(40414);
  const size_t num_keys = 160;
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back("key" + std::to_string(i));
    targets.push_back(static_cast<int64_t>(i % 7));
  }
  universe.base = MakeTwoColumnTable("K", keys, "Y", targets);

  std::vector<int64_t> values;
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(i % 7));
  }
  auto exact = MakeTwoColumnTable("K", keys, "V", values);
  universe.repository.AddTable("exact", exact).Abort();
  universe.repository.AddTable("exact_twin", exact).Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>((i % 7) / 3));
  }
  universe.repository
      .AddTable("coarse", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(7)));
  }
  universe.repository
      .AddTable("noise", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  return universe;
}

JoinMIConfig MakeIndexConfig() {
  JoinMIConfig config;
  config.sketch_capacity = 128;
  config.min_join_size = 16;
  return config;
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/joinmi_rpc_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectBitIdentical(const TopKSearchResult& expected,
                        const TopKSearchResult& actual) {
  EXPECT_EQ(expected.num_candidates, actual.num_candidates);
  EXPECT_EQ(expected.num_evaluated, actual.num_evaluated);
  EXPECT_EQ(expected.num_skipped, actual.num_skipped);
  EXPECT_EQ(expected.num_errors, actual.num_errors);
  ASSERT_EQ(expected.hits.size(), actual.hits.size());
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    EXPECT_EQ(expected.hits[i].candidate.table_name,
              actual.hits[i].candidate.table_name) << i;
    EXPECT_EQ(expected.hits[i].candidate.key_column,
              actual.hits[i].candidate.key_column) << i;
    EXPECT_EQ(expected.hits[i].candidate.value_column,
              actual.hits[i].candidate.value_column) << i;
    EXPECT_EQ(expected.hits[i].estimate.mi, actual.hits[i].estimate.mi) << i;
    EXPECT_EQ(expected.hits[i].estimate.sample_size,
              actual.hits[i].estimate.sample_size) << i;
    EXPECT_EQ(expected.hits[i].estimate.estimator,
              actual.hits[i].estimate.estimator) << i;
  }
}

/// A shard deployment: shard files + manifest on disk, one ShardServer
/// per shard on an ephemeral loopback port, endpoints in shard order.
struct Deployment {
  std::string dir;
  std::string manifest_path;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<ShardEndpoint> endpoints;

  ~Deployment() {
    for (auto& server : servers) {
      if (server != nullptr) server->Stop();
    }
    if (!dir.empty()) std::filesystem::remove_all(dir);
  }
};

void StartDeployment(const SketchIndex& index, size_t num_shards,
                     ShardPartitionPolicy policy, const std::string& name,
                     Deployment* deployment, size_t num_workers = 2) {
  deployment->dir = ScratchDir(name);
  auto manifest_path =
      BuildShards(index, num_shards, policy, deployment->dir);
  ASSERT_TRUE(manifest_path.ok()) << manifest_path.status();
  deployment->manifest_path = *manifest_path;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardServerOptions options;
    options.num_workers = num_workers;
    auto server = ShardServer::Create(deployment->manifest_path, s, options);
    ASSERT_TRUE(server.ok()) << server.status();
    ASSERT_TRUE((*server)->Start().ok());
    deployment->endpoints.push_back(
        ShardEndpoint{"127.0.0.1", (*server)->port()});
    deployment->servers.push_back(std::move(*server));
  }
}

RpcClientOptions FastTimeouts() {
  RpcClientOptions options;
  options.connect_timeout_ms = 500;
  options.io_timeout_ms = 10000;
  return options;
}

// ------------------------------------------------------- Endpoint file v1

std::string WriteEndpointsFixture(const std::string& name,
                                  const std::string& contents) {
  const std::string dir = ScratchDir("endpoints_" + name);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/endpoints.txt";
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(EndpointsFileTest, ToleratesBlankLinesAndComments) {
  const std::string path = WriteEndpointsFixture(
      "tolerant",
      "# serving map for the three shards\n"
      "\n"
      "127.0.0.1:7001\n"
      "   \t\n"
      "127.0.0.1:7002   # shard 1, note the inline comment\n"
      "\n"
      "127.0.0.1:7003\n"
      "# trailing comment\n");
  auto endpoints = ReadShardEndpoints(path);
  ASSERT_TRUE(endpoints.ok()) << endpoints.status();
  ASSERT_EQ(endpoints->size(), 3u);
  EXPECT_EQ((*endpoints)[0][0].port, 7001);
  EXPECT_EQ((*endpoints)[1][0].port, 7002);
  EXPECT_EQ((*endpoints)[2][0].port, 7003);
  std::filesystem::remove_all(
      std::filesystem::path(path).parent_path().string());
}

TEST(EndpointsFileTest, MalformedLineReportsItsLineNumber) {
  // Line 5 is the broken one: comment, blank, and valid lines before it
  // must all count toward the reported position.
  const std::string path = WriteEndpointsFixture(
      "badline",
      "# header\n"
      "\n"
      "127.0.0.1:7001\n"
      "127.0.0.1:7002\n"
      "127.0.0.1:badport\n");
  auto endpoints = ReadShardEndpoints(path);
  ASSERT_FALSE(endpoints.ok());
  EXPECT_TRUE(endpoints.status().IsInvalidArgument()) << endpoints.status();
  EXPECT_NE(endpoints.status().message().find(path + ":5:"),
            std::string::npos)
      << endpoints.status();
  std::filesystem::remove_all(
      std::filesystem::path(path).parent_path().string());
}

TEST(EndpointsFileTest, DeprecatedFlatReaderRejectsReplicaLines) {
  // The deprecated single-endpoint projection must refuse a replicated
  // file and point callers at the unified reader by name.
  const std::string path = WriteEndpointsFixture(
      "v2line", "127.0.0.1:7001\n127.0.0.1:7002, 127.0.0.1:7003\n");
  auto endpoints = ReadEndpointsFile(path);
  ASSERT_FALSE(endpoints.ok());
  EXPECT_TRUE(endpoints.status().IsInvalidArgument()) << endpoints.status();
  EXPECT_NE(endpoints.status().message().find("ReadShardEndpoints"),
            std::string::npos)
      << endpoints.status();
  std::filesystem::remove_all(
      std::filesystem::path(path).parent_path().string());
}

// ---------------------------------------------------- Rank agreement gate

TEST(RpcShardTest, RpcRankingsBitIdenticalToLocalForEveryKPolicyThreads) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ASSERT_EQ(index.size(), 4u);

  for (ShardPartitionPolicy policy :
       {ShardPartitionPolicy::kRoundRobin,
        ShardPartitionPolicy::kHashByDataset}) {
    for (size_t num_shards : {1u, 2u, 7u}) {
      Deployment deployment;
      StartDeployment(index, num_shards, policy,
                      std::string("agree_") +
                          ShardPartitionPolicyToString(policy) + "_" +
                          std::to_string(num_shards),
                      &deployment);
      auto local = ShardedSketchIndex::Load(deployment.manifest_path);
      ASSERT_TRUE(local.ok()) << local.status();
      auto remote = ShardedSketchIndex::Load(
          deployment.manifest_path,
          RpcShardClient::Factory(deployment.endpoints, FastTimeouts()));
      ASSERT_TRUE(remote.ok()) << remote.status();
      EXPECT_EQ(remote->num_shards(), num_shards);
      EXPECT_TRUE(remote->config() == index.config());

      for (size_t k : {1u, 2u, 7u}) {
        auto via_local = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                          *local, k, 1);
        ASSERT_TRUE(via_local.ok()) << via_local.status();
        for (size_t num_threads : {1u, 4u, 0u}) {
          auto via_rpc = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                          *remote, k, num_threads);
          ASSERT_TRUE(via_rpc.ok()) << via_rpc.status();
          ExpectBitIdentical(*via_local, *via_rpc);
          EXPECT_TRUE(via_rpc->shard_failures.empty());
        }
      }
    }
  }
}

TEST(RpcShardTest, ConnectionsAreReusedAcrossQueries) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  Deployment deployment;
  StartDeployment(index, 2, ShardPartitionPolicy::kRoundRobin, "reuse",
                  &deployment);
  auto remote = ShardedSketchIndex::Load(
      deployment.manifest_path,
      RpcShardClient::Factory(deployment.endpoints, FastTimeouts()));
  ASSERT_TRUE(remote.ok()) << remote.status();
  auto query =
      JoinMIQuery::Create(*universe.base, "K", "Y", index.config());
  ASSERT_TRUE(query.ok());
  ShardSearchResult first;
  for (int q = 0; q < 5; ++q) {
    auto result = remote->Search(*query, 3, 1);
    ASSERT_TRUE(result.ok()) << result.status();
    if (q == 0) {
      first = std::move(*result);
    } else {
      ASSERT_EQ(result->hits.size(), first.hits.size());
      for (size_t i = 0; i < first.hits.size(); ++i) {
        EXPECT_EQ(result->hits[i].estimate.mi, first.hits[i].estimate.mi);
        EXPECT_EQ(result->hits[i].global_index, first.hits[i].global_index);
      }
    }
  }
  // 5 queries x 2 shards = 10 search frames, and exactly 2 handshakes (one
  // per client connection) prove the connections were not re-dialed per
  // query — each re-dial would add a handshake. The search counter counts
  // query traffic only; handshakes no longer inflate it.
  uint64_t total_requests = 0;
  uint64_t total_handshakes = 0;
  for (const auto& server : deployment.servers) {
    total_requests += server->requests_served();
    total_handshakes += server->handshakes_served();
  }
  EXPECT_EQ(total_requests, 5u * 2u);
  EXPECT_EQ(total_handshakes, 2u);
}

// --------------------------------------------- Concurrent multiplexing

// Builds a 1-shard RPC router whose single typed client is observable, so
// tests can read pool instrumentation after driving traffic through the
// normal ShardedSketchIndex surface.
void MakeSingleShardRouter(const Deployment& deployment,
                           RpcClientOptions options,
                           std::unique_ptr<ShardedSketchIndex>* router,
                           const RpcShardClient** client_out) {
  auto manifest = ReadManifestFile(deployment.manifest_path);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  ASSERT_TRUE(manifest->config.has_value());
  auto client = RpcShardClient::Create(deployment.endpoints[0],
                                       *manifest->config,
                                       manifest->shards[0].candidate_count,
                                       options);
  ASSERT_TRUE(client.ok()) << client.status();
  *client_out = client->get();
  std::vector<std::unique_ptr<ShardClient>> clients;
  clients.push_back(std::move(*client));
  auto assembled =
      ShardedSketchIndex::Create(std::move(*manifest), std::move(clients));
  ASSERT_TRUE(assembled.ok()) << assembled.status();
  *router = std::make_unique<ShardedSketchIndex>(std::move(*assembled));
}

TEST(RpcShardTest, ConcurrentRouterThreadsMultiplexOneShardViaThePool) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  Deployment deployment;
  StartDeployment(index, 1, ShardPartitionPolicy::kRoundRobin, "mux",
                  &deployment, /*num_workers=*/8);

  RpcClientOptions options = FastTimeouts();
  options.pool_size = 4;
  std::unique_ptr<ShardedSketchIndex> router;
  const RpcShardClient* client = nullptr;
  MakeSingleShardRouter(deployment, options, &router, &client);

  // Serial reference: the local (in-process) path, once.
  auto local = ShardedSketchIndex::Load(deployment.manifest_path);
  ASSERT_TRUE(local.ok()) << local.status();
  const size_t k = 3;
  auto expected = TopKJoinMISearch(*universe.base, {"K", "Y"}, *local, k, 1);
  ASSERT_TRUE(expected.ok()) << expected.status();

  // 8 router threads, each issuing several strict queries concurrently
  // against the same 1-shard index: the pool must multiplex them onto
  // parallel connections, and every single ranking must stay
  // bit-identical to the serial local answer.
  const size_t num_threads = 8;
  const size_t queries_per_thread = 4;
  std::vector<TopKSearchResult> results(num_threads * queries_per_thread);
  std::vector<Status> statuses(num_threads * queries_per_thread,
                               Status::OK());
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t q = 0; q < queries_per_thread; ++q) {
        auto result =
            TopKJoinMISearch(*universe.base, {"K", "Y"}, *router, k, 1);
        const size_t slot = t * queries_per_thread + q;
        if (result.ok()) {
          results[slot] = std::move(*result);
        } else {
          statuses[slot] = result.status();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok()) << "query " << i << ": " << statuses[i];
    ExpectBitIdentical(*expected, results[i]);
    EXPECT_TRUE(results[i].shard_failures.empty());
  }
  // The acceptance gate: pool instrumentation proves at least two
  // requests were in flight to the single shard at the same instant —
  // the old one-socket client could never exceed 1 here.
  EXPECT_GE(client->pool().max_in_flight(), 2u)
      << "8 threads x 4 queries never overlapped on the shard connection "
         "pool";
  EXPECT_LE(client->pool().max_in_flight(), options.pool_size);
  EXPECT_LE(client->pool().total_dials(), options.pool_size);
}

TEST(RpcShardTest, PoolOfOneBlocksConcurrentQueriesInsteadOfOverdialing) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  Deployment deployment;
  StartDeployment(index, 1, ShardPartitionPolicy::kRoundRobin, "pool1",
                  &deployment, /*num_workers=*/4);

  RpcClientOptions options = FastTimeouts();
  options.pool_size = 1;
  std::unique_ptr<ShardedSketchIndex> router;
  const RpcShardClient* client = nullptr;
  MakeSingleShardRouter(deployment, options, &router, &client);

  auto local = ShardedSketchIndex::Load(deployment.manifest_path);
  ASSERT_TRUE(local.ok());
  auto expected = TopKJoinMISearch(*universe.base, {"K", "Y"}, *local, 3, 1);
  ASSERT_TRUE(expected.ok());

  const size_t num_threads = 4;
  const size_t queries_per_thread = 4;
  std::vector<Status> statuses(num_threads, Status::OK());
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t q = 0; q < queries_per_thread; ++q) {
        auto result =
            TopKJoinMISearch(*universe.base, {"K", "Y"}, *router, 3, 1);
        if (!result.ok()) {
          statuses[t] = result.status();
          return;
        }
        ExpectBitIdentical(*expected, *result);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < num_threads; ++t) {
    ASSERT_TRUE(statuses[t].ok()) << "thread " << t << ": " << statuses[t];
  }
  // Leases blocked rather than over-dialed: never more than one in
  // flight, exactly one connection ever dialed (Create's eager handshake
  // connection, reused by all 16 queries)...
  EXPECT_EQ(client->pool().max_in_flight(), 1u);
  EXPECT_EQ(client->pool().total_dials(), 1u);
  // ...which the server confirms independently: one handshake ever, and
  // every search accounted for on that single connection (the handshake
  // itself no longer counts as a request).
  EXPECT_EQ(deployment.servers[0]->handshakes_served(), 1u);
  EXPECT_EQ(deployment.servers[0]->requests_served(),
            num_threads * queries_per_thread);
}

// ------------------------------------------------------- Failure handling

TEST(RpcShardTest, KilledShardFailsStrictAndDegradesGracefully) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const size_t num_shards = 3;
  Deployment deployment;
  StartDeployment(index, num_shards, ShardPartitionPolicy::kRoundRobin,
                  "degrade", &deployment);

  // Reference: the full (healthy) local answer, and the per-shard local
  // answers for computing the expected degraded merge.
  auto local = ShardedSketchIndex::Load(deployment.manifest_path);
  ASSERT_TRUE(local.ok());
  auto query =
      JoinMIQuery::Create(*universe.base, "K", "Y", index.config());
  ASSERT_TRUE(query.ok());
  const size_t k = 4;

  // Kill shard 1's server, then assemble the router — creation must
  // tolerate the outage (that is the degraded deployment's whole point).
  const size_t dead_shard = 1;
  deployment.servers[dead_shard]->Stop();
  auto remote = ShardedSketchIndex::Load(
      deployment.manifest_path,
      RpcShardClient::Factory(deployment.endpoints, FastTimeouts()));
  ASSERT_TRUE(remote.ok()) << remote.status();

  // Strict mode: the query fails, naming the dead shard.
  auto strict = remote->Search(*query, k, 1, ShardQueryMode::kStrict);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsIOError()) << strict.status();
  EXPECT_NE(strict.status().message().find("shard 1"), std::string::npos)
      << strict.status();

  // Degraded mode: the surviving shards' merged top-k, outage recorded.
  auto degraded = remote->Search(*query, k, 1, ShardQueryMode::kDegraded);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  ASSERT_EQ(degraded->shard_failures.size(), 1u);
  EXPECT_EQ(degraded->shard_failures[0].shard, dead_shard);
  EXPECT_FALSE(degraded->shard_failures[0].status.ok());

  // Expected: merge the live shards' local per-shard answers with the
  // canonical comparator — computed independently of the router.
  std::vector<ShardSearchHit> expected;
  size_t expected_candidates = 0, expected_evaluated = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    if (s == dead_shard) continue;
    const ShardManifestEntry& entry = local->manifest().shards[s];
    auto shard_index = ReadIndexFile(
        deployment.dir + "/" + entry.path);
    ASSERT_TRUE(shard_index.ok());
    auto client = LocalShardClient::Create(std::move(*shard_index),
                                           entry.global_indices);
    ASSERT_TRUE(client.ok());
    auto result = (*client)->Search(*query, k, 1);
    ASSERT_TRUE(result.ok());
    expected_candidates += result->num_candidates;
    expected_evaluated += result->num_evaluated;
    for (const ShardSearchHit& hit : result->hits) {
      expected.push_back(hit);
    }
  }
  std::sort(expected.begin(), expected.end(),
            [](const ShardSearchHit& a, const ShardSearchHit& b) {
              return internal::BetterByMIThenKey(
                  a.estimate.mi, a.global_index, b.estimate.mi,
                  b.global_index);
            });
  if (expected.size() > k) expected.resize(k);

  EXPECT_EQ(degraded->num_candidates, expected_candidates);
  EXPECT_EQ(degraded->num_evaluated, expected_evaluated);
  ASSERT_EQ(degraded->hits.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(degraded->hits[i].global_index, expected[i].global_index) << i;
    EXPECT_EQ(degraded->hits[i].estimate.mi, expected[i].estimate.mi) << i;
    EXPECT_EQ(degraded->hits[i].ref.table_name, expected[i].ref.table_name)
        << i;
  }

  // The search-overload surface carries the failure report through.
  auto via_search = TopKJoinMISearch(*universe.base, {"K", "Y"}, *remote, k,
                                     1, ShardQueryMode::kDegraded);
  ASSERT_TRUE(via_search.ok()) << via_search.status();
  ASSERT_EQ(via_search->shard_failures.size(), 1u);
  EXPECT_EQ(via_search->shard_failures[0].shard, dead_shard);
  ASSERT_EQ(via_search->hits.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(via_search->hits[i].estimate.mi, expected[i].estimate.mi) << i;
  }

  // A restarted shard heals the router without reassembly: bring the dead
  // shard back on the SAME port and the strict query works again.
  ShardServerOptions revive_options;
  revive_options.num_workers = 2;
  revive_options.port = deployment.endpoints[dead_shard].port;
  auto revived = ShardServer::Create(deployment.manifest_path, dead_shard,
                                     revive_options);
  ASSERT_TRUE(revived.ok()) << revived.status();
  ASSERT_TRUE((*revived)->Start().ok());
  deployment.servers[dead_shard] = std::move(*revived);
  auto healed = remote->Search(*query, k, 1, ShardQueryMode::kStrict);
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_TRUE(healed->shard_failures.empty());
}

TEST(RpcShardTest, RestartedServerHealsCachedConnectionsTransparently) {
  // Regression: a client that already used its connection, whose server
  // then cleanly restarts, must answer the very next strict query — the
  // stale cached connection accepts the send (TCP half-close), so only
  // the pre-send staleness probe can keep the first post-restart request
  // from failing spuriously.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  Deployment deployment;
  StartDeployment(index, 2, ShardPartitionPolicy::kRoundRobin, "restart",
                  &deployment);
  auto remote = ShardedSketchIndex::Load(
      deployment.manifest_path,
      RpcShardClient::Factory(deployment.endpoints, FastTimeouts()));
  ASSERT_TRUE(remote.ok()) << remote.status();
  auto query =
      JoinMIQuery::Create(*universe.base, "K", "Y", index.config());
  ASSERT_TRUE(query.ok());

  auto before = remote->Search(*query, 3, 1);
  ASSERT_TRUE(before.ok()) << before.status();

  // Restart every server on its old port; the clients' cached
  // connections all go stale at once.
  for (size_t s = 0; s < deployment.servers.size(); ++s) {
    const uint16_t port = deployment.endpoints[s].port;
    deployment.servers[s]->Stop();
    ShardServerOptions options;
    options.num_workers = 2;
    options.port = port;
    auto revived =
        ShardServer::Create(deployment.manifest_path, s, options);
    ASSERT_TRUE(revived.ok()) << revived.status();
    ASSERT_TRUE((*revived)->Start().ok());
    deployment.servers[s] = std::move(*revived);
  }

  auto after = remote->Search(*query, 3, 1, ShardQueryMode::kStrict);
  ASSERT_TRUE(after.ok()) << "first strict query after a clean restart "
                             "must succeed, got: "
                          << after.status();
  ASSERT_EQ(after->hits.size(), before->hits.size());
  for (size_t i = 0; i < before->hits.size(); ++i) {
    EXPECT_EQ(after->hits[i].estimate.mi, before->hits[i].estimate.mi);
    EXPECT_EQ(after->hits[i].global_index, before->hits[i].global_index);
  }
}

TEST(RpcShardTest, AllShardsDownFailsEvenDegraded) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  Deployment deployment;
  StartDeployment(index, 2, ShardPartitionPolicy::kRoundRobin, "alldown",
                  &deployment);
  auto remote = ShardedSketchIndex::Load(
      deployment.manifest_path,
      RpcShardClient::Factory(deployment.endpoints, FastTimeouts()));
  ASSERT_TRUE(remote.ok());
  for (auto& server : deployment.servers) server->Stop();
  auto query =
      JoinMIQuery::Create(*universe.base, "K", "Y", index.config());
  ASSERT_TRUE(query.ok());
  auto degraded = remote->Search(*query, 3, 1, ShardQueryMode::kDegraded);
  ASSERT_FALSE(degraded.ok());
  EXPECT_NE(degraded.status().message().find("every shard failed"),
            std::string::npos)
      << degraded.status();
}

TEST(RpcShardTest, HealthProbeReportsLivenessAndOutage) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  Deployment deployment;
  StartDeployment(index, 2, ShardPartitionPolicy::kRoundRobin, "health",
                  &deployment);
  auto manifest = ReadManifestFile(deployment.manifest_path);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(manifest->config.has_value());

  auto client = RpcShardClient::Create(
      deployment.endpoints[0], *manifest->config,
      manifest->shards[0].candidate_count, FastTimeouts());
  ASSERT_TRUE(client.ok()) << client.status();
  auto health = (*client)->Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->num_candidates, manifest->shards[0].candidate_count);
  // No search has run: the reported counter is 0 because handshakes and
  // health probes no longer inflate it — they land on their own counters.
  EXPECT_EQ(health->requests_served, 0u);
  EXPECT_GE(deployment.servers[0]->handshakes_served(), 1u);
  EXPECT_GE(deployment.servers[0]->health_served(), 1u);

  deployment.servers[0]->Stop();
  auto down = (*client)->Health();
  ASSERT_FALSE(down.ok());
}

// -------------------------------------------------- Config agreement gate

TEST(RpcShardTest, HandshakeRejectsConfigDisagreement) {
  // Serve shards built under seed 0, but hand the router a manifest whose
  // embedded config says seed 9 — the handshake's operator== check must
  // refuse at assembly, not at first wrong answer.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  Deployment deployment;
  StartDeployment(index, 2, ShardPartitionPolicy::kRoundRobin, "confmis",
                  &deployment);

  auto manifest = ReadManifestFile(deployment.manifest_path);
  ASSERT_TRUE(manifest.ok());
  JoinMIConfig tampered = *manifest->config;
  tampered.hash_seed = 9;
  auto client = RpcShardClient::Create(
      deployment.endpoints[0], tampered,
      manifest->shards[0].candidate_count, FastTimeouts());
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsInvalidArgument()) << client.status();
  EXPECT_NE(client.status().message().find("JoinMIConfig"),
            std::string::npos);
}

TEST(RpcShardTest, SearchRejectsQueryConfigDrift) {
  // A query sketched under a different estimator config than the shard's
  // must be refused client-side: the server would otherwise answer under
  // its own config and the caller would never know.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  Deployment deployment;
  StartDeployment(index, 1, ShardPartitionPolicy::kRoundRobin, "drift",
                  &deployment);
  auto remote = ShardedSketchIndex::Load(
      deployment.manifest_path,
      RpcShardClient::Factory(deployment.endpoints, FastTimeouts()));
  ASSERT_TRUE(remote.ok());

  JoinMIConfig drifted = MakeIndexConfig();
  drifted.estimator = MIEstimatorKind::kMLE;
  auto query = JoinMIQuery::Create(*universe.base, "K", "Y", drifted);
  ASSERT_TRUE(query.ok());
  auto result = remote->Search(*query, 3, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();

  // min_join_size alone is allowed to differ — it travels per request and
  // the shard honors it exactly.
  JoinMIConfig relaxed = MakeIndexConfig();
  relaxed.min_join_size = 1;
  auto relaxed_query =
      JoinMIQuery::Create(*universe.base, "K", "Y", relaxed);
  ASSERT_TRUE(relaxed_query.ok());
  auto relaxed_result = remote->Search(*relaxed_query, 3, 1);
  ASSERT_TRUE(relaxed_result.ok()) << relaxed_result.status();
}

// ---------------------------------------------- JMRP v2: pipelining

void ExpectShardBitIdentical(const ShardSearchResult& expected,
                             const ShardSearchResult& actual) {
  EXPECT_EQ(expected.num_candidates, actual.num_candidates);
  EXPECT_EQ(expected.num_evaluated, actual.num_evaluated);
  EXPECT_EQ(expected.num_skipped, actual.num_skipped);
  EXPECT_EQ(expected.num_errors, actual.num_errors);
  ASSERT_EQ(expected.hits.size(), actual.hits.size());
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    EXPECT_EQ(expected.hits[i].global_index, actual.hits[i].global_index)
        << i;
    EXPECT_EQ(expected.hits[i].ref.table_name, actual.hits[i].ref.table_name)
        << i;
    EXPECT_EQ(expected.hits[i].estimate.mi, actual.hits[i].estimate.mi) << i;
    EXPECT_EQ(expected.hits[i].estimate.sample_size,
              actual.hits[i].estimate.sample_size) << i;
  }
}

TEST(RpcShardTest, PipelinedChannelOverlapsQueriesOnOneConnection) {
  // pool_size 1: a single TCP connection, shared by 8 concurrent router
  // threads. The v1 client would serialize them whole-exchange; the v2
  // channel interleaves requests and demuxes responses by request_id, so
  // the in-flight high-water mark must exceed 1 while the dial count
  // stays at exactly one connection.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  Deployment deployment;
  StartDeployment(index, 1, ShardPartitionPolicy::kRoundRobin, "pipeline",
                  &deployment, /*num_workers=*/4);

  RpcClientOptions options = FastTimeouts();
  options.pool_size = 1;
  std::unique_ptr<ShardedSketchIndex> router;
  const RpcShardClient* client = nullptr;
  MakeSingleShardRouter(deployment, options, &router, &client);
  ASSERT_EQ(client->negotiated_version(), net::kProtocolVersion);

  auto local = ShardedSketchIndex::Load(deployment.manifest_path);
  ASSERT_TRUE(local.ok());
  auto expected = TopKJoinMISearch(*universe.base, {"K", "Y"}, *local, 3, 1);
  ASSERT_TRUE(expected.ok());

  const size_t num_threads = 8;
  const size_t queries_per_thread = 4;
  std::vector<Status> statuses(num_threads, Status::OK());
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t q = 0; q < queries_per_thread; ++q) {
        auto result =
            TopKJoinMISearch(*universe.base, {"K", "Y"}, *router, 3, 1);
        if (!result.ok()) {
          statuses[t] = result.status();
          return;
        }
        ExpectBitIdentical(*expected, *result);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < num_threads; ++t) {
    ASSERT_TRUE(statuses[t].ok()) << "thread " << t << ": " << statuses[t];
  }
  // The pigeonhole: 32 queries from 8 threads funneled through one
  // connection must have overlapped — pipelining is what lets them.
  EXPECT_GE(client->max_pipelined(), 2u)
      << "8 threads never had two requests in flight on the one connection";
  EXPECT_EQ(client->live_channels(), 1u);
  EXPECT_EQ(client->pool().total_dials(), 1u);
  // The sketch crossed the wire once; every query after the first reused
  // the connection-cached copy by digest.
  EXPECT_EQ(deployment.servers[0]->sketch_uploads_served(), 1u);
  EXPECT_EQ(deployment.servers[0]->requests_served(),
            num_threads * queries_per_thread);
}

TEST(RpcShardTest, BatchedVariantsBitIdenticalAcrossShardsAndPolicies) {
  // One sketch upload, one batch frame per shard, many (k, min_join_size)
  // variants — each element must equal both the local batched answer and
  // an individual remote Search under that variant's parameters.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());

  const std::vector<ShardSearchVariant> variants = {
      {1, 16}, {3, 16}, {3, 1}, {7, 16}, {3, 16} /* duplicate on purpose */};

  for (ShardPartitionPolicy policy :
       {ShardPartitionPolicy::kRoundRobin,
        ShardPartitionPolicy::kHashByDataset}) {
    for (size_t num_shards : {1u, 3u}) {
      Deployment deployment;
      StartDeployment(index, num_shards, policy,
                      std::string("batch_") +
                          ShardPartitionPolicyToString(policy) + "_" +
                          std::to_string(num_shards),
                      &deployment);
      auto local = ShardedSketchIndex::Load(deployment.manifest_path);
      ASSERT_TRUE(local.ok()) << local.status();
      auto remote = ShardedSketchIndex::Load(
          deployment.manifest_path,
          RpcShardClient::Factory(deployment.endpoints, FastTimeouts()));
      ASSERT_TRUE(remote.ok()) << remote.status();

      auto query =
          JoinMIQuery::Create(*universe.base, "K", "Y", index.config());
      ASSERT_TRUE(query.ok());
      auto local_batch = local->SearchVariants(*query, variants, 1);
      ASSERT_TRUE(local_batch.ok()) << local_batch.status();
      auto remote_batch = remote->SearchVariants(*query, variants, 1);
      ASSERT_TRUE(remote_batch.ok()) << remote_batch.status();
      ASSERT_EQ(remote_batch->size(), variants.size());
      for (size_t i = 0; i < variants.size(); ++i) {
        ExpectShardBitIdentical((*local_batch)[i], (*remote_batch)[i]);
      }
      // The duplicate variant answers identically to its twin.
      ExpectShardBitIdentical((*remote_batch)[1], (*remote_batch)[4]);
      // Cross-check one variant against the single-search path under a
      // query rebuilt with that variant's min_join_size.
      JoinMIConfig relaxed = index.config();
      relaxed.min_join_size = 1;
      auto relaxed_query =
          JoinMIQuery::Create(*universe.base, "K", "Y", relaxed);
      ASSERT_TRUE(relaxed_query.ok());
      auto single = remote->Search(*relaxed_query, 3, 1);
      ASSERT_TRUE(single.ok()) << single.status();
      ExpectShardBitIdentical(*single, (*remote_batch)[2]);

      // Empty batch short-circuits without a frame.
      auto empty = remote->SearchVariants(*query, {}, 1);
      ASSERT_TRUE(empty.ok());
      EXPECT_TRUE(empty->empty());
    }
  }
}

// --------------------------------------- Cross-version interoperability

TEST(RpcShardTest, V1ClientAgainstV2ServerStaysBitIdentical) {
  // A not-yet-upgraded client capped at protocol v1 talks to today's
  // server: handshake negotiates down to 1, searches travel as legacy
  // one-per-round-trip frames (no uploads), rankings stay bit-identical.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  Deployment deployment;
  StartDeployment(index, 2, ShardPartitionPolicy::kRoundRobin, "v1client",
                  &deployment);

  RpcClientOptions options = FastTimeouts();
  options.max_protocol_version = 1;
  auto local = ShardedSketchIndex::Load(deployment.manifest_path);
  ASSERT_TRUE(local.ok());
  auto remote = ShardedSketchIndex::Load(
      deployment.manifest_path,
      RpcShardClient::Factory(deployment.endpoints, options));
  ASSERT_TRUE(remote.ok()) << remote.status();

  auto query =
      JoinMIQuery::Create(*universe.base, "K", "Y", index.config());
  ASSERT_TRUE(query.ok());
  for (size_t k : {1u, 3u, 7u}) {
    auto expected = local->Search(*query, k, 1);
    ASSERT_TRUE(expected.ok());
    auto actual = remote->Search(*query, k, 1);
    ASSERT_TRUE(actual.ok()) << actual.status();
    ExpectShardBitIdentical(*expected, *actual);
  }
  // Batched variants still answer correctly — the v1 fallback loops one
  // legacy frame per variant instead of sending a batch.
  const std::vector<ShardSearchVariant> variants = {{1, 16}, {3, 1}};
  auto local_batch = local->SearchVariants(*query, variants, 1);
  ASSERT_TRUE(local_batch.ok());
  auto remote_batch = remote->SearchVariants(*query, variants, 1);
  ASSERT_TRUE(remote_batch.ok()) << remote_batch.status();
  ASSERT_EQ(remote_batch->size(), variants.size());
  for (size_t i = 0; i < variants.size(); ++i) {
    ExpectShardBitIdentical((*local_batch)[i], (*remote_batch)[i]);
  }
  // Nothing v2 ever crossed the wire.
  for (const auto& server : deployment.servers) {
    EXPECT_EQ(server->sketch_uploads_served(), 0u);
  }
}

/// A frozen v1 binary in miniature: blocking accept loop, a thread per
/// connection, only the legacy frames — the handshake answered in the
/// legacy shape (no protocol_version field), searches served one frame
/// per round trip, anything newer answered with an error and a hangup.
/// This is what a not-yet-upgraded shard looks like to a v2 client
/// mid-rolling-upgrade.
class LegacyServer {
 public:
  static std::unique_ptr<LegacyServer> Start(const ShardManifest& manifest,
                                             const std::string& dir) {
    auto client = ShardedSketchIndex::LocalFileFactory()(manifest, 0, dir);
    EXPECT_TRUE(client.ok()) << client.status();
    auto listener = net::Listener::Bind("127.0.0.1", 0);
    EXPECT_TRUE(listener.ok()) << listener.status();
    std::unique_ptr<LegacyServer> server(new LegacyServer);
    server->client_ = std::move(*client);
    server->listener_ = std::move(*listener);
    server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
    return server;
  }

  ~LegacyServer() {
    stop_.store(true);
    if (acceptor_.joinable()) acceptor_.join();
    for (std::thread& worker : workers_) worker.join();
  }

  uint16_t port() const { return listener_.port(); }

 private:
  LegacyServer() = default;

  void AcceptLoop() {
    while (!stop_.load()) {
      auto socket = listener_.AcceptWithTimeout(50);
      if (!socket.ok()) continue;
      auto shared = std::make_shared<net::Socket>(std::move(*socket));
      workers_.emplace_back([this, shared] { Serve(shared.get()); });
    }
  }

  void Serve(net::Socket* socket) {
    (void)socket->SetTimeouts(2000, 2000);
    while (!stop_.load()) {
      auto frame = net::RecvFrame(socket);
      if (!frame.ok()) return;
      switch (frame->type) {
        case net::FrameType::kHandshakeRequest: {
          rpc::HandshakeResponse response;
          response.config = client_->config();
          response.num_candidates = client_->num_candidates();
          response.protocol_version = 1;  // encodes the legacy shape
          if (!net::SendFrame(socket, net::FrameType::kHandshakeResponse,
                              rpc::EncodeHandshakeResponse(response))
                   .ok()) {
            return;
          }
          break;
        }
        case net::FrameType::kSearchRequest: {
          rpc::SearchResponse response;
          auto run = [&]() -> Result<ShardSearchResult> {
            JOINMI_ASSIGN_OR_RETURN(
                rpc::SearchRequest request,
                rpc::DecodeSearchRequest(frame->payload));
            JOINMI_ASSIGN_OR_RETURN(Sketch train,
                                    DeserializeSketch(request.train_sketch));
            JoinMIConfig config = client_->config();
            config.min_join_size =
                static_cast<size_t>(request.min_join_size);
            JOINMI_ASSIGN_OR_RETURN(
                JoinMIQuery query,
                JoinMIQuery::FromTrainSketch(std::move(train), config));
            return client_->Search(query, static_cast<size_t>(request.k),
                                   1);
          };
          auto result = run();
          if (result.ok()) {
            response.status = Status::OK();
            response.result = std::move(*result);
          } else {
            response.status = result.status();
          }
          if (!net::SendFrame(socket, net::FrameType::kSearchResponse,
                              rpc::EncodeSearchResponse(response))
                   .ok()) {
            return;
          }
          break;
        }
        default: {
          // A v1 binary has never heard of uploads or batches.
          (void)net::SendFrame(
              socket, net::FrameType::kError,
              rpc::EncodeErrorPayload(Status::InvalidArgument(
                  "unknown frame type")));
          return;
        }
      }
    }
  }

  std::unique_ptr<ShardClient> client_;
  net::Listener listener_;
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

TEST(RpcShardTest, V2ClientAgainstLegacyV1ServerNegotiatesDown) {
  // Today's client dials a frozen v1 server. The legacy-shaped handshake
  // response is how it learns the server can't speak v2: it must fall
  // back to one-search-per-round-trip frames and still answer
  // bit-identically.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string dir = ScratchDir("legacy");
  auto manifest_path =
      BuildShards(index, 1, ShardPartitionPolicy::kRoundRobin, dir);
  ASSERT_TRUE(manifest_path.ok()) << manifest_path.status();
  auto manifest = ReadManifestFile(*manifest_path);
  ASSERT_TRUE(manifest.ok());
  auto legacy = LegacyServer::Start(*manifest, dir);

  ASSERT_TRUE(manifest->config.has_value());
  auto client = RpcShardClient::Create(
      ShardEndpoint{"127.0.0.1", legacy->port()}, *manifest->config,
      manifest->shards[0].candidate_count, FastTimeouts());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_EQ((*client)->negotiated_version(), 1u);

  auto local = ShardedSketchIndex::Load(*manifest_path);
  ASSERT_TRUE(local.ok());
  auto query =
      JoinMIQuery::Create(*universe.base, "K", "Y", index.config());
  ASSERT_TRUE(query.ok());
  auto expected = local->Search(*query, 3, 1);
  ASSERT_TRUE(expected.ok());
  auto actual = (*client)->Search(*query, 3, 1);
  ASSERT_TRUE(actual.ok()) << actual.status();
  ExpectShardBitIdentical(*expected, *actual);

  // Variants fall back to the per-variant loop a v1 server understands.
  const std::vector<ShardSearchVariant> variants = {{1, 16}, {3, 16}};
  auto batch = (*client)->SearchVariants(*query, variants, 1);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), variants.size());
  auto expected_one = local->Search(*query, 1, 1);
  ASSERT_TRUE(expected_one.ok());
  ExpectShardBitIdentical(*expected_one, (*batch)[0]);
  ExpectShardBitIdentical(*expected, (*batch)[1]);

  client->reset();  // hang up before the server object unwinds
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- Shutdown safety

TEST(RpcShardTest, ConcurrentStopCallsAreSerializedAndIdempotent) {
  // Two threads race Stop() on the same server: exactly one performs the
  // teardown, the other blocks until it finishes, nobody double-joins.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  Deployment deployment;
  StartDeployment(index, 1, ShardPartitionPolicy::kRoundRobin, "stoprace",
                  &deployment);
  ShardServer* server = deployment.servers[0].get();
  const uint16_t port = server->port();

  std::vector<std::thread> stoppers;
  for (int t = 0; t < 2; ++t) {
    stoppers.emplace_back([server] { server->Stop(); });
  }
  for (std::thread& thread : stoppers) thread.join();
  server->Stop();  // and again after the fact — a no-op
  // The port actually stopped answering.
  auto probe = net::Socket::Connect("127.0.0.1", port, 250);
  if (probe.ok()) {
    (void)probe->SetTimeouts(250, 250);
    EXPECT_FALSE(net::SendFrame(&*probe, net::FrameType::kHealthRequest, "")
                     .ok() &&
                 net::RecvFrame(&*probe).ok());
  }
}

}  // namespace
}  // namespace joinmi
