// Unit tests for src/common: Status/Result, math, hashing, RNG, stats.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/hashing.h"
#include "src/common/math.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/string_util.h"

namespace joinmi {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad n");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad n");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad n");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_TRUE(Status::KeyError("x").IsKeyError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::IndexError("x").IsIndexError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::KeyError("a"), Status::KeyError("a"));
  EXPECT_FALSE(Status::KeyError("a") == Status::KeyError("b"));
  EXPECT_FALSE(Status::KeyError("a") == Status::TypeError("a"));
}

Result<int> ReturnsValue() { return 7; }
Result<int> ReturnsError() { return Status::KeyError("missing"); }
Result<int> Propagates() {
  JOINMI_ASSIGN_OR_RETURN(int v, ReturnsError());
  return v + 1;
}
Result<int> PropagatesOk() {
  JOINMI_ASSIGN_OR_RETURN(int v, ReturnsValue());
  return v + 1;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ReturnsValue();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ReturnsError();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsKeyError());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  EXPECT_FALSE(Propagates().ok());
  Result<int> ok = PropagatesOk();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
}

// ------------------------------------------------------------------ Math --

TEST(MathTest, DigammaMatchesKnownValues) {
  constexpr double kEulerMascheroni = 0.5772156649015329;
  EXPECT_NEAR(Digamma(1.0), -kEulerMascheroni, 1e-10);
  EXPECT_NEAR(Digamma(2.0), 1.0 - kEulerMascheroni, 1e-10);
  EXPECT_NEAR(Digamma(0.5), -kEulerMascheroni - 2.0 * std::log(2.0), 1e-10);
  // psi(x+1) = psi(x) + 1/x.
  for (double x : {0.25, 1.75, 3.5, 10.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-10) << x;
  }
}

TEST(MathTest, DigammaAsymptotic) {
  // psi(x) ~ ln(x) - 1/(2x) for large x.
  const double x = 1e6;
  EXPECT_NEAR(Digamma(x), std::log(x) - 0.5 / x, 1e-9);
}

TEST(MathTest, LogBinomial) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomial(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(10, 10), 0.0, 1e-12);
  EXPECT_TRUE(std::isinf(LogBinomial(3, 5)));
}

TEST(MathTest, XLogXConvention) {
  EXPECT_EQ(XLogX(0.0), 0.0);
  EXPECT_EQ(XLogX(-1.0), 0.0);
  EXPECT_NEAR(XLogX(2.0), 2.0 * std::log(2.0), 1e-12);
}

TEST(MathTest, HarmonicNumberExactAndAsymptotic) {
  EXPECT_EQ(HarmonicNumber(0), 0.0);
  EXPECT_NEAR(HarmonicNumber(1), 1.0, 1e-12);
  EXPECT_NEAR(HarmonicNumber(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  // Crossover consistency: direct sum vs asymptotic form.
  double direct = 0.0;
  for (int i = 1; i <= 1000; ++i) direct += 1.0 / i;
  EXPECT_NEAR(HarmonicNumber(1000), direct, 1e-10);
}

TEST(MathTest, BivariateNormalMIRoundTrip) {
  for (double mi : {0.0, 0.1, 0.5, 1.0, 2.5, 3.5}) {
    const double r = CorrelationForMI(mi);
    EXPECT_NEAR(BivariateNormalMI(r), mi, 1e-9) << mi;
  }
  EXPECT_EQ(CorrelationForMI(0.0), 0.0);
  // I = 3.5 corresponds to r ~ 0.999 (paper Section V-A).
  EXPECT_NEAR(CorrelationForMI(3.5), 0.999, 1e-3);
}

TEST(MathTest, LogSumExp) {
  EXPECT_NEAR(LogSumExp({std::log(1.0), std::log(3.0)}), std::log(4.0), 1e-12);
  EXPECT_NEAR(LogSumExp({-1000.0, -1000.0}), -1000.0 + std::log(2.0), 1e-9);
  EXPECT_TRUE(std::isinf(LogSumExp({})));
}

// --------------------------------------------------------------- Hashing --

TEST(HashingTest, MurmurDeterministicAndSeedSensitive) {
  EXPECT_EQ(MurmurHash3_32("hello", 0), MurmurHash3_32("hello", 0));
  EXPECT_NE(MurmurHash3_32("hello", 0), MurmurHash3_32("hello", 1));
  EXPECT_NE(MurmurHash3_32("hello", 0), MurmurHash3_32("hellp", 0));
  EXPECT_EQ(MurmurHash3_32("", 0), MurmurHash3_32("", 0));
}

TEST(HashingTest, MurmurKnownVectors) {
  // Reference vectors for MurmurHash3 x86_32.
  EXPECT_EQ(MurmurHash3_32("", 0), 0u);
  EXPECT_EQ(MurmurHash3_32("", 1), 0x514E28B7u);
  EXPECT_EQ(MurmurHash3_32("test", 0), 0xBA6BD213u);
  EXPECT_EQ(MurmurHash3_32("Hello, world!", 0), 0xC0363E43u);
}

TEST(HashingTest, UnitHashInRange) {
  for (uint64_t i = 0; i < 10000; ++i) {
    const double u = UnitHash(i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(HashingTest, UnitHashApproximatelyUniform) {
  // Chi-squared-style bucket check over 100k integers, 20 buckets.
  constexpr int kBuckets = 20;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {0};
  for (uint64_t i = 0; i < kSamples; ++i) {
    ++counts[static_cast<int>(UnitHash(i) * kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, expected * 0.1) << "bucket " << b;
  }
}

TEST(HashingTest, Mix64IsBijectiveOnSample) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 4096; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 4096u);
}

TEST(HashingTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next64(), b.Next64());
  EXPECT_NE(a.Next64(), c.Next64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(RngTest, BinomialMomentsSmallAndLarge) {
  Rng rng(13);
  // Small regime (waiting-time path).
  RunningStats small;
  for (int i = 0; i < 50000; ++i) {
    small.Add(static_cast<double>(rng.Binomial(20, 0.3)));
  }
  EXPECT_NEAR(small.mean(), 6.0, 0.1);
  EXPECT_NEAR(small.variance(), 20 * 0.3 * 0.7, 0.15);
  // Large regime (normal-approximation path).
  RunningStats large;
  for (int i = 0; i < 50000; ++i) {
    large.Add(static_cast<double>(rng.Binomial(1000, 0.5)));
  }
  EXPECT_NEAR(large.mean(), 500.0, 1.0);
  EXPECT_NEAR(large.variance(), 250.0, 10.0);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(17);
  EXPECT_EQ(rng.Binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.Binomial(10, 1.0), 10u);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.Binomial(5, 0.9), 5u);
  }
}

TEST(RngTest, MultinomialSumsToN) {
  Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    const auto counts = rng.Multinomial(1000, {0.2, 0.3, 0.5});
    EXPECT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[0] + counts[1] + counts[2], 1000u);
  }
}

TEST(RngTest, MultinomialMeans) {
  Rng rng(23);
  double sum0 = 0.0, sum1 = 0.0;
  constexpr int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto counts = rng.Multinomial(10, {0.25, 0.35, 0.4});
    sum0 += static_cast<double>(counts[0]);
    sum1 += static_cast<double>(counts[1]);
  }
  EXPECT_NEAR(sum0 / kTrials, 2.5, 0.05);
  EXPECT_NEAR(sum1 / kTrials, 3.5, 0.05);
}

TEST(RngTest, ZipfRangeAndSkew) {
  Rng rng(29);
  size_t ones = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t z = rng.Zipf(100, 1.2);
    ASSERT_GE(z, 1u);
    ASSERT_LE(z, 100u);
    if (z == 1) ++ones;
  }
  // Rank 1 should dominate under s = 1.2 (theoretical share ~1/H ~ 0.26).
  EXPECT_GT(static_cast<double>(ones) / kSamples, 0.15);
}

TEST(RngTest, ForkProducesDivergentStreams) {
  Rng a(31);
  Rng b = a.Fork();
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i) differs = a.Next64() != b.Next64();
  EXPECT_TRUE(differs);
}

// ----------------------------------------------------------------- Stats --

TEST(StatsTest, MeanVarianceStddev) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_NEAR(Mean(xs), 2.5, 1e-12);
  EXPECT_NEAR(Variance(xs), 1.25, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(StatsTest, ErrorMetrics) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {2, 2, 5};
  EXPECT_NEAR(*MeanSquaredError(a, b), (1.0 + 0.0 + 4.0) / 3.0, 1e-12);
  EXPECT_NEAR(*RootMeanSquaredError(a, b), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(*MeanAbsoluteError(a, b), 1.0, 1e-12);
  EXPECT_FALSE(MeanSquaredError({1}, {1, 2}).ok());
  EXPECT_FALSE(MeanSquaredError({}, {}).ok());
}

TEST(StatsTest, PearsonPerfectAndInverse) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(*PearsonCorrelation(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(*PearsonCorrelation(xs, neg), -1.0, 1e-12);
  EXPECT_EQ(*PearsonCorrelation(xs, {3, 3, 3, 3, 3}), 0.0);  // constant side
}

TEST(StatsTest, SpearmanMonotoneInvariance) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> cubed;
  for (double x : xs) cubed.push_back(x * x * x);
  EXPECT_NEAR(*SpearmanCorrelation(xs, cubed), 1.0, 1e-12);
}

TEST(StatsTest, MidRanksHandleTies) {
  const std::vector<double> xs = {10, 20, 20, 30};
  const std::vector<double> ranks = MidRanks(xs);
  EXPECT_EQ(ranks[0], 1.0);
  EXPECT_EQ(ranks[1], 2.5);
  EXPECT_EQ(ranks[2], 2.5);
  EXPECT_EQ(ranks[3], 4.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {4, 1, 3, 2};
  EXPECT_NEAR(*Quantile(xs, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(*Quantile(xs, 1.0), 4.0, 1e-12);
  EXPECT_NEAR(*Quantile(xs, 0.5), 2.5, 1e-12);
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  EXPECT_FALSE(Quantile({1.0}, 1.5).ok());
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  Rng rng(37);
  std::vector<double> xs;
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-5, 5);
    xs.push_back(x);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(stats.variance(), Variance(xs), 1e-9);
  EXPECT_EQ(stats.count(), 1000u);
  EXPECT_LE(stats.min(), stats.max());
}

// ----------------------------------------------------------- StringUtil --

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, TrimAndLower) {
  EXPECT_EQ(Trim("  x y \t"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64(" 7 ", &v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(ParseInt64("4.5", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("12x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, StrFormatAndJoin) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

}  // namespace
}  // namespace joinmi
