// Unit tests for src/discovery: repository extraction, sketch index +
// top-k discovery queries, ranking metrics, and the open-data simulator.

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/discovery/opendata_sim.h"
#include "src/discovery/ranking.h"
#include "src/discovery/repository.h"
#include "src/discovery/sketch_index.h"
#include "src/join/left_join.h"

namespace joinmi {
namespace {

// -------------------------------------------------------------- Repository

TEST(RepositoryTest, AddAndLookup) {
  TableRepository repo;
  auto t = *Table::FromColumns({{"k", Column::MakeString({"a"})}});
  ASSERT_TRUE(repo.AddTable("t1", t).ok());
  EXPECT_TRUE(repo.AddTable("t1", t).IsAlreadyExists());
  EXPECT_FALSE(repo.AddTable("t2", nullptr).ok());
  EXPECT_TRUE(repo.GetTable("t1").ok());
  EXPECT_FALSE(repo.GetTable("nope").ok());
  EXPECT_EQ(repo.num_tables(), 1u);
  EXPECT_EQ(repo.table_names(), std::vector<std::string>{"t1"});
}

TEST(RepositoryTest, ExtractColumnPairsFollowsPaperRules) {
  // Key must be a string attribute; value may be string or numeric.
  TableRepository repo;
  auto t = *Table::FromColumns({
      {"id", Column::MakeString({"a"})},
      {"city", Column::MakeString({"x"})},
      {"pop", Column::MakeInt64({1})},
      {"rate", Column::MakeDouble({0.5})},
  });
  ASSERT_TRUE(repo.AddTable("t", t).ok());
  const auto pairs = repo.ExtractColumnPairs();
  // Keys: id, city (2 string attrs). Values: the other 3 columns each.
  EXPECT_EQ(pairs.size(), 6u);
  for (const auto& p : pairs) {
    EXPECT_TRUE(p.key_column == "id" || p.key_column == "city");
    EXPECT_NE(p.key_column, p.value_column);
  }
}

TEST(RepositoryTest, NoStringKeysMeansNoPairs) {
  TableRepository repo;
  auto t = *Table::FromColumns({{"a", Column::MakeInt64({1})},
                                {"b", Column::MakeDouble({2.0})}});
  ASSERT_TRUE(repo.AddTable("t", t).ok());
  EXPECT_TRUE(repo.ExtractColumnPairs().empty());
}

// ----------------------------------------------------------------- Ranking

TEST(RankingTest, CompareEstimatesPerfectAgreement) {
  const std::vector<double> mi = {0.1, 0.5, 0.9, 0.3};
  auto cmp = *CompareEstimates(mi, mi);
  EXPECT_EQ(cmp.count, 4u);
  EXPECT_EQ(cmp.mse, 0.0);
  EXPECT_NEAR(cmp.spearman, 1.0, 1e-12);
  EXPECT_NEAR(cmp.pearson, 1.0, 1e-12);
}

TEST(RankingTest, CompareEstimatesDetectsDisagreement) {
  const std::vector<double> full = {0.1, 0.5, 0.9};
  const std::vector<double> reversed = {0.9, 0.5, 0.1};
  auto cmp = *CompareEstimates(full, reversed);
  EXPECT_NEAR(cmp.spearman, -1.0, 1e-12);
  EXPECT_GT(cmp.mse, 0.0);
}

TEST(RankingTest, TopKIndicesAndOverlap) {
  const std::vector<double> ref = {0.9, 0.1, 0.8, 0.2, 0.7};
  EXPECT_EQ(TopKIndices(ref, 3), (std::vector<size_t>{0, 2, 4}));
  EXPECT_EQ(TopKIndices(ref, 99).size(), 5u);
  // Estimate agrees on 2 of top-3.
  const std::vector<double> est = {0.9, 0.85, 0.8, 0.2, 0.1};
  EXPECT_NEAR(*TopKOverlap(ref, est, 3), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(*TopKOverlap(ref, ref, 3), 1.0, 1e-12);
  EXPECT_FALSE(TopKOverlap(ref, est, 0).ok());
  EXPECT_FALSE(TopKOverlap({0.1}, {0.1, 0.2}, 1).ok());
}

// ---------------------------------------------------------- Sketch index --

TEST(SketchIndexTest, IndexAndQueryRanksPlantedSignal) {
  // Candidate "good" is a deterministic function of the target; candidate
  // "noise" is independent. The index must rank "good" first.
  // String target + string candidates -> the MLE path on both sides (a
  // numeric target against string candidates would force DC-KSG onto data
  // with massive ties, which is exactly the misuse the paper warns about).
  Rng rng(41);
  std::vector<std::string> keys;
  std::vector<std::string> targets;
  for (int i = 0; i < 600; ++i) {
    const int k = static_cast<int>(rng.NextBounded(150));
    keys.push_back("k" + std::to_string(k));
    targets.push_back("t" + std::to_string(k % 5));
  }
  auto train = *Table::FromColumns({{"K", Column::MakeString(keys)},
                                    {"Y", Column::MakeString(targets)}});
  std::vector<std::string> cand_keys;
  std::vector<std::string> good_values, noise_values;
  for (int k = 0; k < 150; ++k) {
    cand_keys.push_back("k" + std::to_string(k));
    good_values.push_back("g" + std::to_string(k % 5));
    noise_values.push_back("n" + std::to_string(k % 7));
  }
  auto cand = *Table::FromColumns(
      {{"K", Column::MakeString(cand_keys)},
       {"good", Column::MakeString(good_values)},
       {"noise", Column::MakeString(noise_values)}});

  TableRepository repo;
  ASSERT_TRUE(repo.AddTable("cand", cand).ok());

  JoinMIConfig config;
  config.sketch_capacity = 256;
  config.aggregation = AggKind::kMode;
  config.min_join_size = 10;
  SketchIndex index(config);
  auto indexed = index.IndexRepository(repo);
  ASSERT_TRUE(indexed.ok());
  // Pairs: key=K -> values {good, noise}; key=good -> {K, noise}; etc.
  EXPECT_GE(*indexed, 2u);

  auto query = *JoinMIQuery::Create(*train, "K", "Y", config);
  auto hits = *index.Query(query, 10);
  ASSERT_GE(hits.size(), 2u);
  // Find positions of the two candidates keyed on K.
  int good_pos = -1, noise_pos = -1;
  for (size_t i = 0; i < hits.size(); ++i) {
    if (hits[i].ref.key_column == "K" && hits[i].ref.value_column == "good") {
      good_pos = static_cast<int>(i);
    }
    if (hits[i].ref.key_column == "K" &&
        hits[i].ref.value_column == "noise") {
      noise_pos = static_cast<int>(i);
    }
  }
  ASSERT_GE(good_pos, 0);
  ASSERT_GE(noise_pos, 0);
  EXPECT_LT(good_pos, noise_pos);  // planted signal ranked above noise
  EXPECT_GT(hits[static_cast<size_t>(good_pos)].mi,
            hits[static_cast<size_t>(noise_pos)].mi);
}

TEST(SketchIndexTest, TopKTruncates) {
  JoinMIConfig config;
  config.sketch_capacity = 64;
  config.aggregation = AggKind::kFirst;
  SketchIndex index(config);
  auto cand = *Table::FromColumns(
      {{"K", Column::MakeString({"a", "b", "c", "d", "e", "f", "g", "h"})},
       {"V1", Column::MakeInt64({1, 2, 3, 4, 5, 6, 7, 8})},
       {"V2", Column::MakeInt64({8, 7, 6, 5, 4, 3, 2, 1})}});
  ASSERT_TRUE(index.AddCandidate(*cand, {"c", "K", "V1"}).ok());
  ASSERT_TRUE(index.AddCandidate(*cand, {"c", "K", "V2"}).ok());
  auto train = *Table::FromColumns(
      {{"K", Column::MakeString({"a", "b", "c", "d", "e", "f", "g", "h"})},
       {"Y", Column::MakeInt64({1, 1, 2, 2, 3, 3, 4, 4})}});
  JoinMIConfig query_config = config;
  query_config.min_join_size = 1;
  auto query = *JoinMIQuery::Create(*train, "K", "Y", query_config);
  auto hits = *index.Query(query, 1);
  EXPECT_EQ(hits.size(), 1u);
}

// ------------------------------------------------------- Open-data sim ----

TEST(OpenDataSimTest, GeneratesRequestedShape) {
  OpenDataParams params;
  params.num_pairs = 8;
  params.left_rows = 500;
  params.right_rows = 300;
  params.left_key_domain = 200;
  params.right_key_domain = 150;
  params.seed = 5;
  auto pairs = GenerateOpenDataCollection(params);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 8u);
  for (const auto& pair : *pairs) {
    EXPECT_GE(pair.train->num_rows(), 250u);
    EXPECT_LE(pair.train->num_rows(), 750u);
    EXPECT_TRUE(pair.train->schema().HasField("K"));
    EXPECT_TRUE(pair.train->schema().HasField("Y"));
    EXPECT_TRUE(pair.cand->schema().HasField("K"));
    EXPECT_TRUE(pair.cand->schema().HasField("Z"));
    EXPECT_GE(pair.dependence, 0.0);
    EXPECT_LE(pair.dependence, 1.0);
    // Keys are strings as in the paper's extraction rule.
    EXPECT_EQ((*pair.train->GetColumn("K"))->type(), DataType::kString);
  }
}

TEST(OpenDataSimTest, DeterministicPerSeed) {
  OpenDataParams params;
  params.num_pairs = 3;
  params.left_rows = 200;
  params.right_rows = 100;
  params.left_key_domain = 80;
  params.right_key_domain = 60;
  params.seed = 9;
  auto a = *GenerateOpenDataCollection(params);
  auto b = *GenerateOpenDataCollection(params);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].train->num_rows(), b[i].train->num_rows());
    EXPECT_EQ(a[i].dependence, b[i].dependence);
  }
}

TEST(OpenDataSimTest, KeysOverlapAcrossSides) {
  OpenDataParams params;
  params.num_pairs = 4;
  params.left_rows = 2000;
  params.right_rows = 1500;
  params.left_key_domain = 300;
  params.right_key_domain = 300;
  params.key_overlap = 0.8;
  params.seed = 11;
  auto pairs = *GenerateOpenDataCollection(params);
  for (const auto& pair : pairs) {
    auto join_size = *EquiJoinSize(*(*pair.train->GetColumn("K")),
                                   *(*pair.cand->GetColumn("K")));
    EXPECT_GT(join_size, 0u) << "no key overlap generated";
  }
}

TEST(OpenDataSimTest, DependenceDrivesFullJoinMI) {
  // Across the collection, pairs with high planted dependence should have
  // higher full-join MI than pairs with low dependence (rank correlation).
  OpenDataParams params;
  params.num_pairs = 24;
  params.left_rows = 1500;
  params.right_rows = 800;
  params.left_key_domain = 250;
  params.right_key_domain = 250;
  params.key_overlap = 0.9;
  params.p_string_value = 0.0;  // numeric-only for a single estimator
  params.seed = 13;
  auto pairs = *GenerateOpenDataCollection(params);
  std::vector<double> dependence, mi;
  for (const auto& pair : pairs) {
    JoinMIConfig config;
    config.aggregation = AggKind::kAvg;
    config.estimator = MIEstimatorKind::kMixedKSG;
    auto estimate = FullJoinMI(*pair.train, *pair.cand,
                               {"K", "Y", "K", "Z"}, config);
    if (!estimate.ok()) continue;
    dependence.push_back(pair.dependence);
    mi.push_back(estimate->mi);
  }
  ASSERT_GE(dependence.size(), 15u);
  EXPECT_GT(*SpearmanCorrelation(dependence, mi), 0.6);
}

TEST(OpenDataSimTest, PresetsMatchReportedDomainScales) {
  const OpenDataParams wbf = WBFLikeParams();
  EXPECT_EQ(wbf.left_key_domain, 3100u);
  EXPECT_EQ(wbf.right_key_domain, 3500u);
  const OpenDataParams nyc = NYCLikeParams();
  EXPECT_EQ(nyc.left_key_domain, 11200u);
  EXPECT_EQ(nyc.right_key_domain, 1000u);
}

TEST(OpenDataSimTest, RejectsBadParams) {
  OpenDataParams params;
  params.num_pairs = 0;
  EXPECT_FALSE(GenerateOpenDataCollection(params).ok());
  params = OpenDataParams{};
  params.key_overlap = 1.5;
  EXPECT_FALSE(GenerateOpenDataCollection(params).ok());
  params = OpenDataParams{};
  params.latent_buckets = 0;
  EXPECT_FALSE(GenerateOpenDataCollection(params).ok());
}

}  // namespace
}  // namespace joinmi
