// Tests for paged shard storage end to end: the "JMPS" file format
// (round trips with records spilling across pages, open-time validation
// with byte-accounted errors, page-walking verification), the
// PagedShardClient (bit-identical rankings to the in-memory path across
// shard counts, policies, thread counts, and k — including under pools
// small enough to evict mid-query, proven by the eviction counter), the
// manifest v3 format tags (mixed formats, v2 byte-compatibility), and a
// ShardServer actually serving a paged shard over RPC.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/discovery/paged_shard_index.h"
#include "src/discovery/rpc_shard_client.h"
#include "src/discovery/search.h"
#include "src/discovery/shard_server.h"
#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/sketch/serialize.h"
#include "src/storage/paged_shard_file.h"
#include "src/table/table.h"

namespace joinmi {
namespace {

std::shared_ptr<Table> MakeTwoColumnTable(const std::string& key_name,
                                          std::vector<std::string> keys,
                                          const std::string& value_name,
                                          std::vector<int64_t> values) {
  return *Table::FromColumns(
      {{key_name, Column::MakeString(std::move(keys))},
       {value_name, Column::MakeInt64(std::move(values))}});
}

/// Base table whose target is a function of the key, plus candidates of
/// graded relevance including exact twins (as in sharded_index_test) so
/// tie-breaks are exercised.
struct Universe {
  std::shared_ptr<Table> base;
  TableRepository repository;
};

Universe MakeUniverse() {
  Universe universe;
  Rng rng(7171);
  const size_t num_keys = 160;
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back("key" + std::to_string(i));
    targets.push_back(static_cast<int64_t>(i % 7));
  }
  universe.base = MakeTwoColumnTable("K", keys, "Y", targets);

  std::vector<int64_t> values;
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(i % 7));
  }
  auto exact = MakeTwoColumnTable("K", keys, "V", values);
  universe.repository.AddTable("exact", exact).Abort();
  universe.repository.AddTable("exact_twin", exact).Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>((i % 7) / 3));
  }
  universe.repository
      .AddTable("coarse", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(7)));
  }
  universe.repository
      .AddTable("noise", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  return universe;
}

JoinMIConfig MakeIndexConfig() {
  JoinMIConfig config;
  config.sketch_capacity = 128;
  config.min_join_size = 16;
  return config;
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/joinmi_paged_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectBitIdentical(const TopKSearchResult& expected,
                        const TopKSearchResult& actual) {
  EXPECT_EQ(expected.num_candidates, actual.num_candidates);
  EXPECT_EQ(expected.num_evaluated, actual.num_evaluated);
  EXPECT_EQ(expected.num_skipped, actual.num_skipped);
  EXPECT_EQ(expected.num_errors, actual.num_errors);
  ASSERT_EQ(expected.hits.size(), actual.hits.size());
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    EXPECT_EQ(expected.hits[i].candidate.ToString(),
              actual.hits[i].candidate.ToString()) << i;
    EXPECT_EQ(expected.hits[i].estimate.mi, actual.hits[i].estimate.mi) << i;
    EXPECT_EQ(expected.hits[i].estimate.sample_size,
              actual.hits[i].estimate.sample_size) << i;
    EXPECT_EQ(expected.hits[i].estimate.estimator,
              actual.hits[i].estimate.estimator) << i;
  }
}

void ExpectSameShardHits(const ShardSearchResult& expected,
                         const ShardSearchResult& actual) {
  EXPECT_EQ(expected.num_evaluated, actual.num_evaluated);
  EXPECT_EQ(expected.num_skipped, actual.num_skipped);
  EXPECT_EQ(expected.num_errors, actual.num_errors);
  ASSERT_EQ(expected.hits.size(), actual.hits.size());
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    EXPECT_EQ(expected.hits[i].global_index, actual.hits[i].global_index)
        << i;
    EXPECT_EQ(expected.hits[i].ref.ToString(), actual.hits[i].ref.ToString())
        << i;
    EXPECT_EQ(expected.hits[i].estimate.mi, actual.hits[i].estimate.mi) << i;
    EXPECT_EQ(expected.hits[i].estimate.sample_size,
              actual.hits[i].estimate.sample_size) << i;
  }
}

// Flips one byte inside page `page`'s payload area of the JMPS file.
void CorruptPagePayload(const std::string& path, uint64_t page,
                        uint32_t page_size) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  const std::streamoff offset =
      static_cast<std::streamoff>(storage::kPagedShardHeaderSize) +
      static_cast<std::streamoff>(page) * page_size +
      storage::kPageHeaderSize + 3;
  file.seekg(offset);
  char byte = 0;
  file.get(byte);
  file.seekp(offset);
  file.put(static_cast<char>(byte ^ 0x20));
  ASSERT_TRUE(file.good());
}

// ------------------------------------------------------- JMPS file format

TEST(PagedShardFileTest, RoundTripsRecordsAcrossPageSpills) {
  // Page size 64 leaves 48 payload bytes; these lengths cover exact fits,
  // one-byte spills, and records spanning several pages.
  const uint32_t page_size = 64;
  std::vector<std::string> records;
  size_t next = 0;
  for (size_t length : {1u, 47u, 48u, 49u, 100u, 200u, 5u}) {
    std::string record;
    for (size_t i = 0; i < length; ++i) {
      record.push_back(static_cast<char>('a' + (next++ % 23)));
    }
    records.push_back(std::move(record));
  }
  const JoinMIConfig config = MakeIndexConfig();
  auto bytes = storage::BuildPagedShardBytes(config, records, page_size);
  ASSERT_TRUE(bytes.ok()) << bytes.status();

  const std::string dir = ScratchDir("roundtrip");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/shard.jmps";
  ASSERT_TRUE(wire::WriteFileBytes(*bytes, path).ok());

  auto file = storage::PagedShardFile::Open(path, /*pool_pages=*/2);
  ASSERT_TRUE(file.ok()) << file.status();
  EXPECT_EQ((*file)->num_records(), records.size());
  EXPECT_EQ((*file)->page_size(), page_size);
  EXPECT_GT((*file)->page_count(), 5u);
  EXPECT_EQ((*file)->config().ToString(), config.ToString());
  for (size_t i = 0; i < records.size(); ++i) {
    auto record = (*file)->ReadRecord(i);
    ASSERT_TRUE(record.ok()) << i << ": " << record.status();
    EXPECT_EQ(*record, records[i]) << i;
  }
  // Everything faulted through a 2-frame pool over a >5 page file: the
  // spilled reads must have evicted.
  EXPECT_GT((*file)->pool_stats().evictions, 0u);
  EXPECT_FALSE((*file)->ReadRecord(records.size()).ok());

  // The open receipt: header + directory only.
  const storage::PagedOpenStats& stats = (*file)->open_stats();
  EXPECT_EQ(stats.startup_bytes_read,
            storage::kPagedShardHeaderSize + records.size() * 16);
  EXPECT_EQ(stats.file_size, bytes->size());
  EXPECT_LT(stats.startup_bytes_read, stats.file_size);
  std::filesystem::remove_all(dir);
}

TEST(PagedShardFileTest, BuildRejectsBadInputs) {
  const JoinMIConfig config = MakeIndexConfig();
  EXPECT_FALSE(storage::BuildPagedShardBytes(config, {"x"}, 8).ok());
  auto empty_record = storage::BuildPagedShardBytes(config, {"a", ""}, 4096);
  ASSERT_FALSE(empty_record.ok());
  EXPECT_NE(empty_record.status().message().find("record 1"),
            std::string::npos);
  // Zero records is a valid (empty) shard.
  auto empty_shard = storage::BuildPagedShardBytes(config, {}, 4096);
  ASSERT_TRUE(empty_shard.ok()) << empty_shard.status();
  EXPECT_EQ(empty_shard->size(), storage::kPagedShardHeaderSize);
}

TEST(PagedShardFileTest, OpenReportsTruncationWithByteCounts) {
  const JoinMIConfig config = MakeIndexConfig();
  auto bytes = storage::BuildPagedShardBytes(
      config, {std::string(100, 'r'), std::string(90, 's')}, 64);
  ASSERT_TRUE(bytes.ok());
  const std::string dir = ScratchDir("truncation");
  std::filesystem::create_directories(dir);
  const std::string header_size =
      std::to_string(storage::kPagedShardHeaderSize);

  // Empty file: both the actual and the required size are in the message.
  const std::string empty_path = dir + "/empty.jmps";
  ASSERT_TRUE(wire::WriteFileBytes("", empty_path).ok());
  auto empty = storage::PagedShardFile::Open(empty_path, 2);
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find("0 bytes"), std::string::npos)
      << empty.status();
  EXPECT_NE(empty.status().message().find(header_size), std::string::npos)
      << empty.status();

  // Header-only: pages and directory missing.
  const std::string header_path = dir + "/header.jmps";
  ASSERT_TRUE(wire::WriteFileBytes(
                  bytes->substr(0, storage::kPagedShardHeaderSize),
                  header_path)
                  .ok());
  auto header_only = storage::PagedShardFile::Open(header_path, 2);
  ASSERT_FALSE(header_only.ok());
  EXPECT_NE(header_only.status().message().find("truncated"),
            std::string::npos)
      << header_only.status();

  // Cut mid-directory and mid-page: still a truncation, with sizes.
  for (size_t cut : {bytes->size() - 7, bytes->size() - 70}) {
    const std::string cut_path = dir + "/cut.jmps";
    ASSERT_TRUE(wire::WriteFileBytes(bytes->substr(0, cut), cut_path).ok());
    auto opened = storage::PagedShardFile::Open(cut_path, 2);
    ASSERT_FALSE(opened.ok()) << cut;
    EXPECT_NE(opened.status().message().find("truncated"), std::string::npos)
        << opened.status();
    EXPECT_NE(opened.status().message().find(std::to_string(cut)),
              std::string::npos)
        << opened.status();
  }

  // Trailing garbage is not a truncation and says so.
  const std::string garbage_path = dir + "/garbage.jmps";
  ASSERT_TRUE(wire::WriteFileBytes(*bytes + "xx", garbage_path).ok());
  auto garbage = storage::PagedShardFile::Open(garbage_path, 2);
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.status().message().find("trailing garbage"),
            std::string::npos)
      << garbage.status();
  std::filesystem::remove_all(dir);
}

TEST(PagedShardFileTest, VerifyWalksPagesAndNamesTheBadOne) {
  const JoinMIConfig config = MakeIndexConfig();
  std::vector<std::string> records;
  for (size_t i = 0; i < 6; ++i) {
    records.push_back(std::string(120 + i, static_cast<char>('a' + i)));
  }
  const uint32_t page_size = 64;
  auto bytes = storage::BuildPagedShardBytes(config, records, page_size);
  ASSERT_TRUE(bytes.ok());
  const std::string dir = ScratchDir("verify");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/shard.jmps";
  ASSERT_TRUE(wire::WriteFileBytes(*bytes, path).ok());

  uint64_t bad_page = 99;
  ASSERT_TRUE(storage::VerifyPagedShardFile(path, &bad_page).ok());

  CorruptPagePayload(path, /*page=*/2, page_size);
  Status corrupt = storage::VerifyPagedShardFile(path, &bad_page);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(bad_page, 2u);
  EXPECT_NE(corrupt.message().find("corrupt"), std::string::npos) << corrupt;

  // A whole-file "JMIX" index is not a paged shard and must fail cleanly.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string jmix_path = dir + "/index.jmix";
  ASSERT_TRUE(WriteIndexFile(index, jmix_path).ok());
  EXPECT_FALSE(storage::VerifyPagedShardFile(jmix_path, &bad_page).ok());
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------------- Candidate codec

TEST(PagedShardCodecTest, CandidateRecordsRoundTrip) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ASSERT_EQ(index.size(), 4u);
  for (const IndexedCandidate& candidate : index.candidates()) {
    const std::string record =
        EncodeCandidateRecord(candidate.ref, candidate.sketch());
    auto decoded = DecodeCandidateRecord(record);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->ref.ToString(), candidate.ref.ToString());
    EXPECT_EQ(SerializeSketch(decoded->sketch),
              SerializeSketch(candidate.sketch()));
    EXPECT_FALSE(DecodeCandidateRecord(record + "x").ok());
    EXPECT_FALSE(DecodeCandidateRecord(record.substr(0, record.size() / 2))
                     .ok());
  }
}

// --------------------------------------------------------- Rank agreement

TEST(PagedShardSearchTest, AgreesWithWholeFileAndUnshardedEverywhere) {
  // The tentpole acceptance gate: paged shards must return rankings
  // bit-identical to both the whole-file sharded path and the unsharded
  // index, for every shard count, policy, thread count, and k — loaded
  // through a pool small enough (1 page of 256 bytes) that every query
  // faults and evicts continuously.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ASSERT_EQ(index.size(), 4u);

  ShardedSketchIndex::LocalShardLoadOptions tiny_pool;
  tiny_pool.pool_pages = 1;
  tiny_pool.prepared_cache_entries = 0;
  ShardBuildOptions paged_build;
  paged_build.format = ShardFileFormat::kPaged;
  paged_build.page_size = 256;

  for (ShardPartitionPolicy policy :
       {ShardPartitionPolicy::kRoundRobin,
        ShardPartitionPolicy::kHashByDataset}) {
    for (size_t num_shards : {1u, 2u, 3u}) {
      const std::string tag = std::string(ShardPartitionPolicyToString(policy)) +
                              "_" + std::to_string(num_shards);
      const std::string whole_dir = ScratchDir("agree_whole_" + tag);
      const std::string paged_dir = ScratchDir("agree_paged_" + tag);
      auto whole_manifest = BuildShards(index, num_shards, policy, whole_dir);
      ASSERT_TRUE(whole_manifest.ok()) << whole_manifest.status();
      auto paged_manifest =
          BuildShards(index, num_shards, policy, paged_dir, paged_build);
      ASSERT_TRUE(paged_manifest.ok()) << paged_manifest.status();

      auto whole = ShardedSketchIndex::Load(*whole_manifest);
      ASSERT_TRUE(whole.ok()) << whole.status();
      auto paged = ShardedSketchIndex::Load(
          *paged_manifest,
          ShardedSketchIndex::LocalFileFactory(tiny_pool));
      ASSERT_TRUE(paged.ok()) << paged.status();
      for (const ShardManifestEntry& entry : paged->manifest().shards) {
        EXPECT_EQ(entry.format, ShardFileFormat::kPaged);
      }

      for (size_t num_threads : {1u, 4u}) {
        for (size_t k : {1u, 2u, 7u}) {
          auto unsharded = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                            index, k, num_threads);
          ASSERT_TRUE(unsharded.ok()) << unsharded.status();
          auto via_whole = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                            *whole, k, num_threads);
          ASSERT_TRUE(via_whole.ok()) << via_whole.status();
          auto via_paged = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                            *paged, k, num_threads);
          ASSERT_TRUE(via_paged.ok()) << via_paged.status();
          ExpectBitIdentical(*unsharded, *via_whole);
          ExpectBitIdentical(*unsharded, *via_paged);
        }
      }
      std::filesystem::remove_all(whole_dir);
      std::filesystem::remove_all(paged_dir);
    }
  }
}

TEST(PagedShardSearchTest, EvictionReallyHappensAndDoesNotChangeRankings) {
  // Direct client-level check with counters: a 1-frame pool over a
  // many-page shard must evict mid-query (misses > capacity, evictions
  // > 0) and still match the in-memory LocalShardClient hit for hit.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string dir = ScratchDir("evict");
  ShardBuildOptions paged_build;
  paged_build.format = ShardFileFormat::kPaged;
  paged_build.page_size = 256;
  auto manifest_path = BuildShards(index, 1, ShardPartitionPolicy::kRoundRobin,
                                   dir, paged_build);
  ASSERT_TRUE(manifest_path.ok()) << manifest_path.status();
  auto manifest = ReadManifestFile(*manifest_path);
  ASSERT_TRUE(manifest.ok());
  const std::string shard_path = dir + "/" + manifest->shards[0].path;

  PagedShardClient::Options options;
  options.pool_pages = 1;
  options.prepared_cache_entries = 0;
  auto paged_client = PagedShardClient::Open(
      shard_path, manifest->shards[0].global_indices, options);
  ASSERT_TRUE(paged_client.ok()) << paged_client.status();
  EXPECT_EQ((*paged_client)->num_candidates(), 4u);
  EXPECT_EQ((*paged_client)->pool_capacity(), 1u);

  auto loaded = ReadIndexFile(shard_path);
  ASSERT_FALSE(loaded.ok());  // a JMPS file is not a JMIX index
  auto whole_index = DeserializeIndex(SerializeIndex(index));
  ASSERT_TRUE(whole_index.ok());
  auto local_client = LocalShardClient::Create(
      std::move(*whole_index), manifest->shards[0].global_indices);
  ASSERT_TRUE(local_client.ok()) << local_client.status();

  auto query =
      JoinMIQuery::Create(*universe.base, "K", "Y", MakeIndexConfig());
  ASSERT_TRUE(query.ok()) << query.status();
  for (size_t num_threads : {1u, 4u}) {
    for (size_t k : {1u, 2u, 7u}) {
      auto expected = (*local_client)->Search(*query, k, num_threads);
      ASSERT_TRUE(expected.ok()) << expected.status();
      auto actual = (*paged_client)->Search(*query, k, num_threads);
      ASSERT_TRUE(actual.ok()) << actual.status();
      ExpectSameShardHits(*expected, *actual);
    }
  }
  const storage::BufferPoolStats stats = (*paged_client)->pool_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.misses, (*paged_client)->pool_capacity());
  std::filesystem::remove_all(dir);
}

TEST(PagedShardSearchTest, EmptyPagedShardsAreHarmless) {
  // 7 round-robin shards over 4 candidates: three shards hold nothing —
  // zero pages, directory-only files — and must still load and merge.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string dir = ScratchDir("empty");
  ShardBuildOptions paged_build;
  paged_build.format = ShardFileFormat::kPaged;
  auto manifest_path = BuildShards(index, 7, ShardPartitionPolicy::kRoundRobin,
                                   dir, paged_build);
  ASSERT_TRUE(manifest_path.ok()) << manifest_path.status();
  auto sharded = ShardedSketchIndex::Load(*manifest_path);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_EQ(sharded->num_shards(), 7u);
  auto unsharded = TopKJoinMISearch(*universe.base, {"K", "Y"}, index, 10, 1);
  auto via_shards =
      TopKJoinMISearch(*universe.base, {"K", "Y"}, *sharded, 10, 1);
  ASSERT_TRUE(unsharded.ok());
  ASSERT_TRUE(via_shards.ok());
  ExpectBitIdentical(*unsharded, *via_shards);
  std::filesystem::remove_all(dir);
}

TEST(PagedShardSearchTest, CorruptPageFailsOnlyTheCandidatesTouchingIt) {
  // Flip one byte in one page: candidates whose records touch that page
  // become hard errors, every other candidate keeps answering, and the
  // query as a whole still succeeds.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string dir = ScratchDir("corrupt");
  const uint32_t page_size = 256;
  ShardBuildOptions paged_build;
  paged_build.format = ShardFileFormat::kPaged;
  paged_build.page_size = page_size;
  auto manifest_path = BuildShards(index, 1, ShardPartitionPolicy::kRoundRobin,
                                   dir, paged_build);
  ASSERT_TRUE(manifest_path.ok());
  auto manifest = ReadManifestFile(*manifest_path);
  ASSERT_TRUE(manifest.ok());
  const std::string shard_path = dir + "/" + manifest->shards[0].path;

  // Pick an interior page of record 0's span and count which records'
  // byte ranges intersect it — corruption must fail exactly those.
  const uint64_t capacity = storage::PagePayloadCapacity(page_size);
  std::vector<storage::RecordLocation> directory;
  {
    auto file = storage::PagedShardFile::Open(shard_path, 2);
    ASSERT_TRUE(file.ok()) << file.status();
    directory = (*file)->directory();
    ASSERT_GE((*file)->page_count(), 3u);
  }
  const uint64_t bad_page = 1;
  size_t touching = 0;
  for (const storage::RecordLocation& loc : directory) {
    const uint64_t start = loc.page * capacity + loc.offset;
    const uint64_t end = start + loc.length;
    if (start < (bad_page + 1) * capacity && end > bad_page * capacity) {
      ++touching;
    }
  }
  ASSERT_GE(touching, 1u);
  ASSERT_LT(touching, directory.size());

  CorruptPagePayload(shard_path, bad_page, page_size);
  auto client = PagedShardClient::Open(shard_path,
                                       manifest->shards[0].global_indices);
  ASSERT_TRUE(client.ok()) << client.status();
  auto query =
      JoinMIQuery::Create(*universe.base, "K", "Y", MakeIndexConfig());
  ASSERT_TRUE(query.ok());
  auto result = (*client)->Search(*query, 10, 1);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_errors, touching);
  EXPECT_EQ(result->num_evaluated, directory.size() - touching);
  EXPECT_EQ(result->hits.size(), directory.size() - touching);
  std::filesystem::remove_all(dir);
}

TEST(PagedShardSearchTest, OpenValidatesGlobalIndices) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string dir = ScratchDir("indices");
  ShardBuildOptions paged_build;
  paged_build.format = ShardFileFormat::kPaged;
  auto manifest_path = BuildShards(index, 1, ShardPartitionPolicy::kRoundRobin,
                                   dir, paged_build);
  ASSERT_TRUE(manifest_path.ok());
  auto manifest = ReadManifestFile(*manifest_path);
  ASSERT_TRUE(manifest.ok());
  const std::string shard_path = dir + "/" + manifest->shards[0].path;

  EXPECT_FALSE(PagedShardClient::Open(shard_path, {0, 1}).ok());
  EXPECT_FALSE(PagedShardClient::Open(shard_path, {0, 2, 1, 3}).ok());
  EXPECT_TRUE(PagedShardClient::Open(shard_path, {0, 1, 2, 3}).ok());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------ Manifest v3

TEST(PagedManifestTest, FormatTagsRoundTripAndStayV2Compatible) {
  ShardManifest manifest;
  manifest.policy = ShardPartitionPolicy::kRoundRobin;
  manifest.config = MakeIndexConfig();
  manifest.total_candidates = 3;
  manifest.shards.push_back(
      ShardManifestEntry{"a.jmix", 2, 7, {0, 2}});
  manifest.shards.push_back(
      ShardManifestEntry{"b.jmps", 1, 9, {1}});
  manifest.shards[1].format = ShardFileFormat::kPaged;

  const std::string mixed = SerializeManifest(manifest);
  // Any paged shard forces v3.
  uint32_t version = 0;
  std::memcpy(&version, mixed.data() + 4, sizeof(version));
  EXPECT_EQ(version, 3u);
  auto parsed = DeserializeManifest(mixed);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->shards[0].format, ShardFileFormat::kWholeFile);
  EXPECT_EQ(parsed->shards[1].format, ShardFileFormat::kPaged);

  // All-whole-file manifests serialize as v2, byte-identical to a build
  // that never heard of formats — rolling compatibility both ways.
  manifest.shards[1].format = ShardFileFormat::kWholeFile;
  const std::string whole = SerializeManifest(manifest);
  std::memcpy(&version, whole.data() + 4, sizeof(version));
  EXPECT_EQ(version, 2u);
  auto reparsed = DeserializeManifest(whole);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->shards[1].format, ShardFileFormat::kWholeFile);

  EXPECT_STREQ(ShardFileFormatToString(ShardFileFormat::kPaged), "paged");
  EXPECT_TRUE(ParseShardFileFormat("paged").ok());
  EXPECT_TRUE(ParseShardFileFormat("whole").ok());
  EXPECT_FALSE(ParseShardFileFormat("sideways").ok());
}

// ------------------------------------------------------- Paged RPC serving

TEST(PagedShardServerTest, ServesPagedShardOverRpcBitIdentically) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string dir = ScratchDir("server");
  ShardBuildOptions paged_build;
  paged_build.format = ShardFileFormat::kPaged;
  paged_build.page_size = 256;
  auto manifest_path = BuildShards(index, 2, ShardPartitionPolicy::kRoundRobin,
                                   dir, paged_build);
  ASSERT_TRUE(manifest_path.ok()) << manifest_path.status();

  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<ShardEndpoint> endpoints;
  for (size_t s = 0; s < 2; ++s) {
    ShardServerOptions options;
    options.num_workers = 2;
    options.pool_pages = 2;
    options.require_paged = true;
    auto server = ShardServer::Create(*manifest_path, s, options);
    ASSERT_TRUE(server.ok()) << server.status();
    // The operator's receipts: the server knows it is paged, and open
    // really read only header + directory.
    EXPECT_TRUE((*server)->serving_paged());
    EXPECT_EQ((*server)->pool_capacity(), 2u);
    const storage::PagedOpenStats open_stats = (*server)->paged_open_stats();
    EXPECT_LT(open_stats.startup_bytes_read, open_stats.file_size);
    ASSERT_TRUE((*server)->Start().ok());
    endpoints.push_back(ShardEndpoint{"127.0.0.1", (*server)->port()});
    servers.push_back(std::move(*server));
  }

  RpcClientOptions rpc_options;
  rpc_options.connect_timeout_ms = 500;
  rpc_options.io_timeout_ms = 10000;
  auto router = ShardedSketchIndex::Load(
      *manifest_path, RpcShardClient::Factory(endpoints, rpc_options));
  ASSERT_TRUE(router.ok()) << router.status();
  auto unsharded = TopKJoinMISearch(*universe.base, {"K", "Y"}, index, 10, 1);
  ASSERT_TRUE(unsharded.ok());
  auto via_rpc = TopKJoinMISearch(*universe.base, {"K", "Y"}, *router, 10, 1);
  ASSERT_TRUE(via_rpc.ok()) << via_rpc.status();
  ExpectBitIdentical(*unsharded, *via_rpc);

  for (auto& server : servers) server->Stop();
  std::filesystem::remove_all(dir);
}

TEST(PagedShardServerTest, RequirePagedRejectsWholeFileShards) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string dir = ScratchDir("require");
  auto manifest_path =
      BuildShards(index, 1, ShardPartitionPolicy::kRoundRobin, dir);
  ASSERT_TRUE(manifest_path.ok());
  ShardServerOptions options;
  options.require_paged = true;
  auto server = ShardServer::Create(*manifest_path, 0, options);
  ASSERT_FALSE(server.ok());
  EXPECT_NE(server.status().message().find("--format paged"),
            std::string::npos)
      << server.status();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace joinmi
