// Replica-aware serving tests over real loopback sockets: every shard is
// served by N interchangeable ShardServer replicas, the router reaches
// them through ReplicaShardClient, and the acceptance gate is that
// killing any single replica leaves strict-mode rankings bit-identical to
// the unsharded in-process path — plus the v2 endpoints-file format,
// round-robin spreading, cooldown re-probe, and the ReplicaSet selection
// bookkeeping in isolation.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/discovery/replica_router.h"
#include "src/discovery/rpc_shard_client.h"
#include "src/discovery/search.h"
#include "src/discovery/shard_server.h"
#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/table/table.h"

namespace joinmi {
namespace {

std::shared_ptr<Table> MakeTwoColumnTable(const std::string& key_name,
                                          std::vector<std::string> keys,
                                          const std::string& value_name,
                                          std::vector<int64_t> values) {
  return *Table::FromColumns(
      {{key_name, Column::MakeString(std::move(keys))},
       {value_name, Column::MakeInt64(std::move(values))}});
}

struct Universe {
  std::shared_ptr<Table> base;
  TableRepository repository;
};

// Graded relevance plus exact twins, as in rpc_shard_test, so tie-breaks
// must survive replication too.
Universe MakeUniverse() {
  Universe universe;
  Rng rng(50515);
  const size_t num_keys = 160;
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back("key" + std::to_string(i));
    targets.push_back(static_cast<int64_t>(i % 7));
  }
  universe.base = MakeTwoColumnTable("K", keys, "Y", targets);

  std::vector<int64_t> values;
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(i % 7));
  }
  auto exact = MakeTwoColumnTable("K", keys, "V", values);
  universe.repository.AddTable("exact", exact).Abort();
  universe.repository.AddTable("exact_twin", exact).Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>((i % 7) / 3));
  }
  universe.repository
      .AddTable("coarse", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(7)));
  }
  universe.repository
      .AddTable("noise", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  return universe;
}

JoinMIConfig MakeIndexConfig() {
  JoinMIConfig config;
  config.sketch_capacity = 128;
  config.min_join_size = 16;
  return config;
}

std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/joinmi_replica_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void WriteFileOrDie(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good());
  out << contents;
}

RpcClientOptions FastTimeouts() {
  RpcClientOptions options;
  options.connect_timeout_ms = 500;
  options.io_timeout_ms = 10000;
  return options;
}

ReplicaRouterOptions FastReplicaOptions(int cooldown_ms = 100) {
  ReplicaRouterOptions options;
  options.rpc = FastTimeouts();
  options.cooldown_ms = cooldown_ms;
  return options;
}

/// A replicated deployment: shard files + manifest on disk, and for every
/// shard a row of ShardServer replicas on ephemeral loopback ports.
struct ReplicatedDeployment {
  std::string dir;
  std::string manifest_path;
  // servers[shard][replica]; a stopped server stays in place (nullptr-safe
  // Stop) so endpoints keep their indices.
  std::vector<std::vector<std::unique_ptr<ShardServer>>> servers;
  std::vector<std::vector<ShardEndpoint>> endpoints;

  ~ReplicatedDeployment() {
    for (auto& row : servers) {
      for (auto& server : row) {
        if (server != nullptr) server->Stop();
      }
    }
    if (!dir.empty()) std::filesystem::remove_all(dir);
  }

  void Kill(size_t shard, size_t replica) {
    servers[shard][replica]->Stop();
    servers[shard][replica].reset();
  }

  void Revive(size_t shard, size_t replica) {
    ShardServerOptions options;
    options.num_workers = 2;
    options.port = endpoints[shard][replica].port;
    auto server = ShardServer::Create(manifest_path, shard, options);
    ASSERT_TRUE(server.ok()) << server.status();
    ASSERT_TRUE((*server)->Start().ok());
    servers[shard][replica] = std::move(*server);
  }
};

void StartReplicatedDeployment(const SketchIndex& index, size_t num_shards,
                               size_t replicas_per_shard,
                               const std::string& name,
                               ReplicatedDeployment* deployment) {
  deployment->dir = ScratchDir(name);
  auto manifest_path = BuildShards(index, num_shards,
                                   ShardPartitionPolicy::kRoundRobin,
                                   deployment->dir);
  ASSERT_TRUE(manifest_path.ok()) << manifest_path.status();
  deployment->manifest_path = *manifest_path;
  deployment->servers.resize(num_shards);
  deployment->endpoints.resize(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    for (size_t r = 0; r < replicas_per_shard; ++r) {
      ShardServerOptions options;
      options.num_workers = 2;
      auto server =
          ShardServer::Create(deployment->manifest_path, s, options);
      ASSERT_TRUE(server.ok()) << server.status();
      ASSERT_TRUE((*server)->Start().ok());
      deployment->endpoints[s].push_back(
          ShardEndpoint{"127.0.0.1", (*server)->port()});
      deployment->servers[s].push_back(std::move(*server));
    }
  }
}

void ExpectBitIdentical(const TopKSearchResult& expected,
                        const TopKSearchResult& actual) {
  EXPECT_EQ(expected.num_candidates, actual.num_candidates);
  EXPECT_EQ(expected.num_evaluated, actual.num_evaluated);
  EXPECT_EQ(expected.num_skipped, actual.num_skipped);
  EXPECT_EQ(expected.num_errors, actual.num_errors);
  ASSERT_EQ(expected.hits.size(), actual.hits.size());
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    EXPECT_EQ(expected.hits[i].candidate.table_name,
              actual.hits[i].candidate.table_name) << i;
    EXPECT_EQ(expected.hits[i].candidate.value_column,
              actual.hits[i].candidate.value_column) << i;
    EXPECT_EQ(expected.hits[i].estimate.mi, actual.hits[i].estimate.mi) << i;
    EXPECT_EQ(expected.hits[i].estimate.sample_size,
              actual.hits[i].estimate.sample_size) << i;
  }
}

// ------------------------------------------------------- Endpoints file v2

TEST(ReplicaEndpointsFileTest, ReadsV2WithCommentsBlanksAndBothSeparators) {
  const std::string dir = ScratchDir("v2_parse");
  const std::string path = dir + "/endpoints.txt";
  WriteFileOrDie(path,
                 "# replicated serving map\n"
                 "\n"
                 "10.0.0.1:7001, 10.0.0.2:7001   # shard 0: two replicas\n"
                 "10.0.0.1:7002 10.0.0.2:7002 10.0.0.3:7002\n"
                 "   \t \n"
                 "10.0.0.1:7003\n");
  auto shards = ReadShardEndpoints(path);
  ASSERT_TRUE(shards.ok()) << shards.status();
  ASSERT_EQ(shards->size(), 3u);
  ASSERT_EQ((*shards)[0].size(), 2u);
  ASSERT_EQ((*shards)[1].size(), 3u);
  ASSERT_EQ((*shards)[2].size(), 1u);
  EXPECT_EQ((*shards)[0][1].host, "10.0.0.2");
  EXPECT_EQ((*shards)[0][1].port, 7001);
  EXPECT_EQ((*shards)[1][2].host, "10.0.0.3");
  std::filesystem::remove_all(dir);
}

TEST(ReplicaEndpointsFileTest, V1SingleEndpointFilesStayReadable) {
  const std::string dir = ScratchDir("v1_compat");
  const std::string path = dir + "/endpoints.txt";
  WriteFileOrDie(path, "127.0.0.1:7001\n127.0.0.1:7002\n");
  auto shards = ReadShardEndpoints(path);
  ASSERT_TRUE(shards.ok()) << shards.status();
  ASSERT_EQ(shards->size(), 2u);
  EXPECT_EQ((*shards)[0].size(), 1u);
  EXPECT_EQ((*shards)[1].size(), 1u);
  EXPECT_EQ((*shards)[1][0].port, 7002);
  std::filesystem::remove_all(dir);
}

TEST(ReplicaEndpointsFileTest, MalformedReplicaReportsLineNumber) {
  const std::string dir = ScratchDir("v2_badline");
  const std::string path = dir + "/endpoints.txt";
  WriteFileOrDie(path,
                 "# header\n"
                 "127.0.0.1:7001\n"
                 "127.0.0.1:7002, 127.0.0.1:not_a_port\n");
  auto shards = ReadShardEndpoints(path);
  ASSERT_FALSE(shards.ok());
  EXPECT_TRUE(shards.status().IsInvalidArgument());
  EXPECT_NE(shards.status().message().find(path + ":3:"), std::string::npos)
      << shards.status();
  std::filesystem::remove_all(dir);
}

TEST(ReplicaEndpointsFileTest, EmptyFileIsRejected) {
  const std::string dir = ScratchDir("v2_empty");
  const std::string path = dir + "/endpoints.txt";
  WriteFileOrDie(path, "# only comments\n\n");
  auto shards = ReadShardEndpoints(path);
  ASSERT_FALSE(shards.ok());
  EXPECT_TRUE(shards.status().IsInvalidArgument());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------- ReplicaSet bookkeeping

TEST(ReplicaSetTest, RoundRobinRotatesAcrossHealthyReplicas) {
  ReplicaSet set(3, /*cooldown_ms=*/60000);
  auto first = set.PlanAttempts();
  auto second = set.PlanAttempts();
  auto third = set.PlanAttempts();
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0], 0u);
  EXPECT_EQ(second[0], 1u);
  EXPECT_EQ(third[0], 2u);
  // Every plan covers all replicas exactly once.
  for (const auto& plan : {first, second, third}) {
    std::vector<bool> seen(3, false);
    for (size_t i : plan) seen[i] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
  }
}

TEST(ReplicaSetTest, DownReplicasSortLastAndStayOutUntilMarkedHealthy) {
  ReplicaSet set(3, /*cooldown_ms=*/60000);
  set.MarkDown(0);
  EXPECT_TRUE(set.IsDown(0));
  for (int i = 0; i < 4; ++i) {
    auto plan = set.PlanAttempts();
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan.back(), 0u);  // last resort, never first choice
    EXPECT_NE(plan[0], 0u);
  }
  // A long cooldown means no reprobe is due yet.
  EXPECT_TRUE(set.DueForReprobe().empty());
  set.MarkHealthy(0);
  EXPECT_FALSE(set.IsDown(0));
}

TEST(ReplicaSetTest, ReprobeFiresOncePerCooldownPeriod) {
  ReplicaSet set(2, /*cooldown_ms=*/40);
  set.MarkDown(1);
  EXPECT_TRUE(set.DueForReprobe().empty());  // cooldown still running
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  auto due = set.DueForReprobe();
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 1u);
  // Re-armed: immediately asking again yields nothing.
  EXPECT_TRUE(set.DueForReprobe().empty());
  EXPECT_TRUE(set.IsDown(1));  // a probe being due does not heal it
}

TEST(ReplicaSetTest, AllDownStillPlansEveryReplica) {
  ReplicaSet set(2, /*cooldown_ms=*/60000);
  set.MarkDown(0);
  set.MarkDown(1);
  auto plan = set.PlanAttempts();
  ASSERT_EQ(plan.size(), 2u);  // last-resort attempts, not an empty plan
}

// ------------------------------------------- Failover correctness (wire)

TEST(ReplicaRouterTest, KillingAnySingleReplicaKeepsStrictBitIdentical) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ASSERT_EQ(index.size(), 4u);
  const size_t num_shards = 2;
  const size_t replicas_per_shard = 2;

  for (size_t dead_shard = 0; dead_shard < num_shards; ++dead_shard) {
    for (size_t dead_replica = 0; dead_replica < replicas_per_shard;
         ++dead_replica) {
      ReplicatedDeployment deployment;
      StartReplicatedDeployment(index, num_shards, replicas_per_shard,
                                "kill_" + std::to_string(dead_shard) + "_" +
                                    std::to_string(dead_replica),
                                &deployment);
      auto router = ShardedSketchIndex::Load(
          deployment.manifest_path,
          ReplicaShardClient::Factory(deployment.endpoints,
                                      FastReplicaOptions()));
      ASSERT_TRUE(router.ok()) << router.status();

      for (size_t k : {1u, 3u, 7u}) {
        // Reference: the unsharded in-process index-backed search.
        auto expected =
            TopKJoinMISearch(*universe.base, {"K", "Y"}, index, k, 1);
        ASSERT_TRUE(expected.ok()) << expected.status();

        auto healthy = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                        *router, k, 1);
        ASSERT_TRUE(healthy.ok()) << healthy.status();
        ExpectBitIdentical(*expected, *healthy);

        deployment.Kill(dead_shard, dead_replica);
        // Strict mode (the default) must keep answering identically with
        // zero failures: the surviving replica covers its shard fully.
        auto failover = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                         *router, k, 1);
        ASSERT_TRUE(failover.ok())
            << "strict query after killing shard " << dead_shard
            << " replica " << dead_replica << ": " << failover.status();
        EXPECT_TRUE(failover->shard_failures.empty());
        ExpectBitIdentical(*expected, *failover);
        deployment.Revive(dead_shard, dead_replica);
      }
    }
  }
}

TEST(ReplicaRouterTest, AllReplicasOfAShardDownFailsStrictAndDegrades) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ReplicatedDeployment deployment;
  StartReplicatedDeployment(index, 2, 2, "alldown", &deployment);
  auto router = ShardedSketchIndex::Load(
      deployment.manifest_path,
      ReplicaShardClient::Factory(deployment.endpoints,
                                  FastReplicaOptions()));
  ASSERT_TRUE(router.ok()) << router.status();
  auto query =
      JoinMIQuery::Create(*universe.base, "K", "Y", index.config());
  ASSERT_TRUE(query.ok());

  deployment.Kill(0, 0);
  deployment.Kill(0, 1);
  auto strict = router->Search(*query, 3, 1, ShardQueryMode::kStrict);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsIOError()) << strict.status();
  EXPECT_NE(strict.status().message().find("replicas failed"),
            std::string::npos)
      << strict.status();

  // Degraded still answers from shard 1, reporting shard 0's total outage.
  auto degraded = router->Search(*query, 3, 1, ShardQueryMode::kDegraded);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  ASSERT_EQ(degraded->shard_failures.size(), 1u);
  EXPECT_EQ(degraded->shard_failures[0].shard, 0u);

  // One replica coming back heals strict mode.
  deployment.Revive(0, 1);
  auto healed = router->Search(*query, 3, 1, ShardQueryMode::kStrict);
  ASSERT_TRUE(healed.ok()) << healed.status();
}

TEST(ReplicaRouterTest, RoundRobinSpreadsTrafficAcrossBothReplicas) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ReplicatedDeployment deployment;
  StartReplicatedDeployment(index, 1, 2, "spread", &deployment);
  auto router = ShardedSketchIndex::Load(
      deployment.manifest_path,
      ReplicaShardClient::Factory(deployment.endpoints,
                                  FastReplicaOptions()));
  ASSERT_TRUE(router.ok()) << router.status();
  auto query =
      JoinMIQuery::Create(*universe.base, "K", "Y", index.config());
  ASSERT_TRUE(query.ok());
  for (int q = 0; q < 6; ++q) {
    auto result = router->Search(*query, 3, 1);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  // Each replica answered its handshake plus its share of the 6 searches;
  // round-robin guarantees both took real search traffic.
  for (size_t r = 0; r < 2; ++r) {
    const uint64_t handshakes =
        deployment.servers[0][r]->handshakes_served();
    const uint64_t requests = deployment.servers[0][r]->requests_served();
    EXPECT_GE(handshakes, 1u) << "replica " << r;
    EXPECT_GE(requests - handshakes, 2u)
        << "replica " << r << " took no search traffic";
  }
}

TEST(ReplicaRouterTest, CooldownReprobeReturnsARevivedReplicaToRotation) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ReplicatedDeployment deployment;
  StartReplicatedDeployment(index, 1, 2, "reprobe", &deployment);

  // Keep a typed handle on the shard client to watch its replica state.
  auto manifest = ReadManifestFile(deployment.manifest_path);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(manifest->config.has_value());
  auto typed = ReplicaShardClient::Create(
      deployment.endpoints[0], *manifest->config,
      manifest->shards[0].candidate_count,
      FastReplicaOptions(/*cooldown_ms=*/100));
  ASSERT_TRUE(typed.ok()) << typed.status();
  ReplicaShardClient* client = typed->get();
  auto query =
      JoinMIQuery::Create(*universe.base, "K", "Y", index.config());
  ASSERT_TRUE(query.ok());

  deployment.Kill(0, 0);
  // First query fails over to replica 1 and marks replica 0 down.
  auto result = client->Search(*query, 3, 1);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(client->replica_down(0));
  EXPECT_FALSE(client->replica_down(1));

  // While the cooldown runs, queries stick to replica 1 without paying
  // for the dead replica.
  const uint64_t live_before =
      deployment.servers[0][1]->requests_served();
  for (int q = 0; q < 3; ++q) {
    ASSERT_TRUE(client->Search(*query, 3, 1).ok());
  }
  EXPECT_TRUE(client->replica_down(0));
  EXPECT_EQ(deployment.servers[0][1]->requests_served(), live_before + 3);

  // Revive replica 0, outwait the cooldown: the next query's Health()
  // reprobe must return it to rotation.
  deployment.Revive(0, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(client->Search(*query, 3, 1).ok());
  EXPECT_FALSE(client->replica_down(0));
  // The revived server saw the probe on the dedicated counters — probes
  // and handshakes no longer masquerade as served requests.
  EXPECT_GE(deployment.servers[0][0]->handshakes_served(), 1u);
  EXPECT_GE(deployment.servers[0][0]->health_served(), 1u);
  // And with both replicas healthy again, traffic spreads once more.
  const uint64_t revived_before =
      deployment.servers[0][0]->requests_served();
  for (int q = 0; q < 4; ++q) {
    ASSERT_TRUE(client->Search(*query, 3, 1).ok());
  }
  EXPECT_GT(deployment.servers[0][0]->requests_served(), revived_before);
}

TEST(ReplicaRouterTest, ReachableButMisdeployedReplicaFailsCreateLoudly) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ReplicatedDeployment deployment;
  StartReplicatedDeployment(index, 1, 2, "misdeploy", &deployment);
  auto manifest = ReadManifestFile(deployment.manifest_path);
  ASSERT_TRUE(manifest.ok());
  JoinMIConfig tampered = *manifest->config;
  tampered.hash_seed = 9;
  auto client = ReplicaShardClient::Create(
      deployment.endpoints[0], tampered,
      manifest->shards[0].candidate_count, FastReplicaOptions());
  ASSERT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsInvalidArgument()) << client.status();
  EXPECT_NE(client.status().message().find("JoinMIConfig"),
            std::string::npos);
}

TEST(ReplicaRouterTest, FactoryRejectsShardCountMismatchAndEmptyReplicas) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ReplicatedDeployment deployment;
  StartReplicatedDeployment(index, 2, 1, "facterr", &deployment);

  // One endpoint row for a two-shard manifest.
  auto short_map = deployment.endpoints;
  short_map.pop_back();
  auto mismatched = ShardedSketchIndex::Load(
      deployment.manifest_path,
      ReplicaShardClient::Factory(short_map, FastReplicaOptions()));
  ASSERT_FALSE(mismatched.ok());
  EXPECT_TRUE(mismatched.status().IsInvalidArgument());

  // A shard with an empty replica list.
  auto empty_row = deployment.endpoints;
  empty_row[1].clear();
  auto empty = ShardedSketchIndex::Load(
      deployment.manifest_path,
      ReplicaShardClient::Factory(empty_row, FastReplicaOptions()));
  ASSERT_FALSE(empty.ok());
  EXPECT_TRUE(empty.status().IsInvalidArgument());
}

}  // namespace
}  // namespace joinmi
