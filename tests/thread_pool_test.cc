// Tests for the fixed-size thread pool: task execution, future plumbing,
// draining semantics, nested submission, and exception propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/common/thread_pool.h"

namespace joinmi {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ThreadPool pool;
  EXPECT_EQ(pool.num_threads(), ThreadPool::DefaultThreadCount());
}

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_EQ(pool.queue_size(), 0u);
}

TEST(ThreadPoolTest, FuturesCarryResults) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  // sum of squares 0^2..49^2
  EXPECT_EQ(sum, 49 * 50 * 99 / 6);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives the exception and keeps serving tasks.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.Submit([&counter] { counter.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, SingleThreadPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  std::vector<int> expected(32);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace joinmi
