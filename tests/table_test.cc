// Unit tests for src/table: Value, Column, Schema, Table, type inference,
// and the CSV reader/writer.

#include <gtest/gtest.h>

#include "src/table/column.h"
#include "src/table/csv.h"
#include "src/table/schema.h"
#include "src/table/table.h"
#include "src/table/type_inference.h"
#include "src/table/value.h"

namespace joinmi {
namespace {

// ----------------------------------------------------------------- Value --

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{3}).type(), DataType::kInt64);
  EXPECT_EQ(Value(3.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("abc").type(), DataType::kString);
  EXPECT_EQ(Value(int64_t{3}).int64(), 3);
  EXPECT_EQ(Value(3.5).dbl(), 3.5);
  EXPECT_EQ(Value("abc").str(), "abc");
}

TEST(ValueTest, AsDoubleWidensIntegers) {
  EXPECT_EQ(*Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_EQ(*Value(2.5).AsDouble(), 2.5);
  EXPECT_FALSE(Value("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value(int64_t{3}), Value(3.5));
  EXPECT_NE(Value("3"), Value(int64_t{3}));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_NE(Value(int64_t{3}).Hash(), Value(int64_t{4}).Hash());
  EXPECT_EQ(Value("k").Hash(), Value("k").Hash());
  EXPECT_NE(Value("k").Hash(), Value("l").Hash());
  // +0.0 and -0.0 compare equal and must hash equal.
  EXPECT_EQ(Value(0.0).Hash(), Value(-0.0).Hash());
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value(int64_t{1}), Value(2.0));
  EXPECT_LT(Value(2.0), Value("a"));  // numbers before strings
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value::Null(), Value(int64_t{0}));  // null first
  EXPECT_FALSE(Value(int64_t{2}) < Value(int64_t{2}));
}

TEST(ValueTest, ToStringRoundTripsDoubles) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("s").ToString(), "s");
  EXPECT_EQ(Value::Null().ToString(), "");
  EXPECT_EQ(Value(0.5).ToString(), "0.5");
  EXPECT_EQ(Value(1.0 / 3.0).ToString(), Value(1.0 / 3.0).ToString());
}

// ---------------------------------------------------------------- Column --

TEST(ColumnTest, TypedConstructionAndAccess) {
  auto ints = Column::MakeInt64({1, 2, 3});
  EXPECT_EQ(ints->type(), DataType::kInt64);
  EXPECT_EQ(ints->size(), 3u);
  EXPECT_EQ(ints->null_count(), 0u);
  EXPECT_EQ(ints->Int64At(1), 2);
  EXPECT_EQ(ints->GetValue(2), Value(int64_t{3}));

  auto doubles = Column::MakeDouble({1.5, 2.5});
  EXPECT_EQ(doubles->DoubleAt(0), 1.5);
  EXPECT_EQ(*doubles->NumericAt(1), 2.5);

  auto strings = Column::MakeString({"a", "b"});
  EXPECT_EQ(strings->StringAt(1), "b");
  EXPECT_FALSE(strings->NumericAt(0).ok());
}

TEST(ColumnTest, ValidityMasksNulls) {
  auto col = Column::MakeInt64({1, 2, 3}, {true, false, true});
  EXPECT_EQ(col->null_count(), 1u);
  EXPECT_TRUE(col->IsValid(0));
  EXPECT_FALSE(col->IsValid(1));
  EXPECT_TRUE(col->GetValue(1).is_null());
  EXPECT_FALSE(col->NumericAt(1).ok());
}

TEST(ColumnTest, FromValuesInfersConsensusType) {
  auto ints = Column::FromValues({Value(int64_t{1}), Value(int64_t{2})});
  EXPECT_EQ((*ints)->type(), DataType::kInt64);
  // Mixed int/double promotes to double.
  auto promoted = Column::FromValues({Value(int64_t{1}), Value(2.5)});
  EXPECT_EQ((*promoted)->type(), DataType::kDouble);
  EXPECT_EQ((*promoted)->DoubleAt(0), 1.0);
  // Mixed string/number fails.
  EXPECT_FALSE(Column::FromValues({Value("a"), Value(1.0)}).ok());
  // Nulls pass through.
  auto with_null = Column::FromValues({Value(int64_t{1}), Value::Null()});
  EXPECT_EQ((*with_null)->null_count(), 1u);
}

TEST(ColumnTest, TakeGathersAndNullFills) {
  auto col = Column::MakeString({"a", "b", "c"});
  auto taken = col->Take({2, 0, Column::kNullIndex, 2});
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ((*taken)->size(), 4u);
  EXPECT_EQ((*taken)->GetValue(0), Value("c"));
  EXPECT_EQ((*taken)->GetValue(1), Value("a"));
  EXPECT_TRUE((*taken)->GetValue(2).is_null());
  EXPECT_EQ((*taken)->GetValue(3), Value("c"));
  EXPECT_FALSE(col->Take({5}).ok());
}

TEST(ColumnTest, CountDistinctIgnoresNulls) {
  auto col = Column::MakeInt64({1, 2, 2, 3, 3}, {true, true, true, true, false});
  EXPECT_EQ(col->CountDistinct(), 3u);  // 1, 2, 3-valid-once
}

TEST(ColumnTest, ToValuesSkipsNulls) {
  auto col = Column::MakeDouble({1.0, 2.0, 3.0}, {true, false, true});
  const auto values = col->ToValues();
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], Value(1.0));
  EXPECT_EQ(values[1], Value(3.0));
}

TEST(ColumnBuilderTest, AppendsAndTypeChecks) {
  ColumnBuilder builder(DataType::kInt64);
  ASSERT_TRUE(builder.Append(Value(int64_t{1})).ok());
  builder.AppendNull();
  EXPECT_FALSE(builder.Append(Value("x")).ok());
  auto col = builder.Finish();
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->size(), 2u);
  EXPECT_EQ((*col)->null_count(), 1u);
}

TEST(ColumnBuilderTest, DoubleBuilderAcceptsIntegers) {
  ColumnBuilder builder(DataType::kDouble);
  ASSERT_TRUE(builder.Append(Value(int64_t{4})).ok());
  auto col = builder.Finish();
  EXPECT_EQ((*col)->DoubleAt(0), 4.0);
}

// ---------------------------------------------------------------- Schema --

TEST(SchemaTest, FieldLookup) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(schema.num_fields(), 2u);
  EXPECT_EQ(*schema.FieldIndex("b"), 1u);
  EXPECT_FALSE(schema.FieldIndex("c").ok());
  EXPECT_TRUE(schema.HasField("a"));
  EXPECT_FALSE(schema.HasField("z"));
}

TEST(SchemaTest, ValidateRejectsDuplicatesAndEmptyNames) {
  EXPECT_TRUE(Schema({{"a", DataType::kInt64}}).Validate().ok());
  EXPECT_FALSE(
      Schema({{"a", DataType::kInt64}, {"a", DataType::kDouble}}).Validate().ok());
  EXPECT_FALSE(Schema({{"", DataType::kInt64}}).Validate().ok());
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, MakeValidatesShape) {
  auto col = Column::MakeInt64({1, 2});
  auto ok = Table::Make(Schema({{"a", DataType::kInt64}}), {col});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->num_rows(), 2u);

  // Length mismatch.
  auto short_col = Column::MakeInt64({1});
  EXPECT_FALSE(Table::Make(Schema({{"a", DataType::kInt64},
                                   {"b", DataType::kInt64}}),
                           {col, short_col})
                   .ok());
  // Type mismatch.
  EXPECT_FALSE(Table::Make(Schema({{"a", DataType::kString}}), {col}).ok());
  // Count mismatch.
  EXPECT_FALSE(Table::Make(Schema({{"a", DataType::kInt64}}), {}).ok());
}

TEST(TableTest, FromColumnsAndLookup) {
  auto t = Table::FromColumns({{"k", Column::MakeString({"x", "y"})},
                               {"v", Column::MakeDouble({1.0, 2.0})}});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_columns(), 2u);
  auto v = (*t)->GetColumn("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)->DoubleAt(1), 2.0);
  EXPECT_FALSE((*t)->GetColumn("missing").ok());
}

TEST(TableTest, TakeAndSelectAndHead) {
  auto t = *Table::FromColumns({{"k", Column::MakeString({"x", "y", "z"})},
                                {"v", Column::MakeInt64({1, 2, 3})}});
  auto taken = t->Take({2, 0});
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ((*taken)->num_rows(), 2u);
  EXPECT_EQ((*(*taken)->GetColumn("k"))->StringAt(0), "z");

  auto selected = t->Select({"v"});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ((*selected)->num_columns(), 1u);

  auto head = t->Head(2);
  EXPECT_EQ((*head)->num_rows(), 2u);
  auto head_all = t->Head(10);
  EXPECT_EQ((*head_all)->num_rows(), 3u);
}

TEST(TableTest, ToStringPreviews) {
  auto t = *Table::FromColumns({{"k", Column::MakeString({"x", "y"})}});
  const std::string s = t->ToString(1);
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

// ------------------------------------------------------- Type inference --

TEST(TypeInferenceTest, NarrowestTypeWins) {
  EXPECT_EQ(InferType({"1", "2", "3"}).type, DataType::kInt64);
  EXPECT_EQ(InferType({"1", "2.5"}).type, DataType::kDouble);
  EXPECT_EQ(InferType({"1", "x"}).type, DataType::kString);
  EXPECT_EQ(InferType({"a", "b"}).type, DataType::kString);
}

TEST(TypeInferenceTest, NullTokensAreCountedNotTyped) {
  const auto inferred = InferType({"1", "", "NA", "3"});
  EXPECT_EQ(inferred.type, DataType::kInt64);
  EXPECT_EQ(inferred.null_count, 2u);
  EXPECT_EQ(InferType({"", "null", "n/a"}).type, DataType::kString);
}

TEST(TypeInferenceTest, IsNullToken) {
  EXPECT_TRUE(IsNullToken(""));
  EXPECT_TRUE(IsNullToken("  "));
  EXPECT_TRUE(IsNullToken("NULL"));
  EXPECT_TRUE(IsNullToken("NaN"));
  EXPECT_TRUE(IsNullToken("None"));
  EXPECT_FALSE(IsNullToken("0"));
  EXPECT_FALSE(IsNullToken("nil"));
}

TEST(TypeInferenceTest, ParseColumnProducesTypedNulls) {
  auto col = ParseColumn({"1.5", "", "2.5"});
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->type(), DataType::kDouble);
  EXPECT_EQ((*col)->null_count(), 1u);
  EXPECT_EQ((*col)->DoubleAt(2), 2.5);
}

// ------------------------------------------------------------------- CSV --

TEST(CsvTest, ReadBasicWithTypes) {
  auto t = ReadCsvString("name,age,score\nalice,30,1.5\nbob,25,2.5\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 2u);
  EXPECT_EQ((*(*t)->GetColumn("name"))->type(), DataType::kString);
  EXPECT_EQ((*(*t)->GetColumn("age"))->type(), DataType::kInt64);
  EXPECT_EQ((*(*t)->GetColumn("score"))->type(), DataType::kDouble);
  EXPECT_EQ((*(*t)->GetColumn("age"))->Int64At(1), 25);
}

TEST(CsvTest, QuotedFieldsAndEscapes) {
  auto t = ReadCsvString(
      "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n\"line\nbreak\",z\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*(*t)->GetColumn("a"))->StringAt(0), "x,y");
  EXPECT_EQ((*(*t)->GetColumn("b"))->StringAt(0), "say \"hi\"");
  EXPECT_EQ((*(*t)->GetColumn("a"))->StringAt(1), "line\nbreak");
}

TEST(CsvTest, HeaderlessAndNoInference) {
  CsvReadOptions options;
  options.has_header = false;
  options.infer_types = false;
  auto t = ReadCsvString("1,2\n3,4\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->schema().field(0).name, "col0");
  EXPECT_EQ((*(*t)->GetColumn("col0"))->type(), DataType::kString);
}

TEST(CsvTest, RejectsRaggedRowsAndUnterminatedQuotes) {
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n\"oops,1\n").ok());
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvTest, WriteReadRoundTrip) {
  auto t = *Table::FromColumns(
      {{"k", Column::MakeString({"a,b", "q\"q", "plain"})},
       {"v", Column::MakeDouble({1.5, -2.0, 0.25})}});
  const std::string csv = WriteCsvString(*t);
  auto back = ReadCsvString(csv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->num_rows(), 3u);
  EXPECT_EQ((*(*back)->GetColumn("k"))->StringAt(0), "a,b");
  EXPECT_EQ((*(*back)->GetColumn("k"))->StringAt(1), "q\"q");
  EXPECT_EQ((*(*back)->GetColumn("v"))->DoubleAt(2), 0.25);
}

TEST(CsvTest, CrLfLineEndings) {
  auto t = ReadCsvString("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 2u);
  EXPECT_EQ((*(*t)->GetColumn("b"))->Int64At(1), 4);
}

TEST(CsvTest, FileRoundTrip) {
  auto t = *Table::FromColumns({{"x", Column::MakeInt64({7, 8})}});
  const std::string path = testing::TempDir() + "/joinmi_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*t, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*(*back)->GetColumn("x"))->Int64At(1), 8);
  EXPECT_FALSE(ReadCsvFile("/nonexistent/really/not.csv").ok());
}

}  // namespace
}  // namespace joinmi
