// Unit tests for src/synthetic: trinomial parameter selection and exact MI,
// CDUnif closed form, table decomposition (KeyInd/KeyDep), and the full
// generation pipeline — verifying the generated tables re-join to exactly
// the generated (X, Y) sample.

#include <gtest/gtest.h>

#include <cmath>

#include "src/join/left_join.h"
#include "src/mi/estimator.h"
#include "src/synthetic/cdunif.h"
#include "src/synthetic/decompose.h"
#include "src/synthetic/pipeline.h"
#include "src/synthetic/trinomial.h"

namespace joinmi {
namespace {

// --------------------------------------------------------------- Trinomial

TEST(TrinomialTest, BinomialEntropyKnownValues) {
  // Bin(1, 0.5) = fair coin: H = ln 2.
  EXPECT_NEAR(BinomialEntropy(1, 0.5), std::log(2.0), 1e-12);
  // Degenerate cases.
  EXPECT_EQ(BinomialEntropy(10, 0.0), 0.0);
  EXPECT_EQ(BinomialEntropy(10, 1.0), 0.0);
  EXPECT_EQ(BinomialEntropy(0, 0.5), 0.0);
  // Entropy grows with m: asymptotically 0.5 ln(2 pi e m p q).
  const double h64 = BinomialEntropy(64, 0.3);
  const double gaussian_approx = 0.5 * std::log(2 * M_PI * M_E * 64 * 0.3 * 0.7);
  EXPECT_NEAR(h64, gaussian_approx, 0.01);
}

TEST(TrinomialTest, JointEntropyReducesToIndependentSum) {
  // For a trinomial, X and Y are never exactly independent, but when
  // p1 + p2 is small the dependence is weak: H(X,Y) ~ H(X) + H(Y).
  const double hx = BinomialEntropy(100, 0.02);
  const double hy = BinomialEntropy(100, 0.03);
  const double hxy = TrinomialJointEntropy(100, 0.02, 0.03);
  EXPECT_NEAR(hxy, hx + hy, 0.01);
  EXPECT_LE(hxy, hx + hy + 1e-12);  // subadditivity
}

TEST(TrinomialTest, ExactMIIsNonNegativeAndSubadditive) {
  for (double p1 : {0.2, 0.4}) {
    for (double p2 : {0.2, 0.4}) {
      const double mi = TrinomialExactMI(64, p1, p2);
      EXPECT_GE(mi, 0.0);
      EXPECT_LE(mi, std::min(BinomialEntropy(64, p1), BinomialEntropy(64, p2)) +
                        1e-9);
    }
  }
}

TEST(TrinomialTest, MIGrowsWithNegativeDependenceStrength) {
  // Larger p1 + p2 -> stronger negative coupling -> higher MI.
  const double weak = TrinomialExactMI(128, 0.15, 0.15);
  const double strong = TrinomialExactMI(128, 0.45, 0.45);
  EXPECT_GT(strong, weak);
}

TEST(TrinomialTest, ParamSelectionHitsTargetRange) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    auto params = SampleTrinomialParams(512, rng, 0.5, 3.0);
    ASSERT_TRUE(params.ok());
    EXPECT_GE(params->p1, 0.15);
    EXPECT_LE(params->p1, 0.85);
    EXPECT_GE(params->p2, 0.15);
    EXPECT_LE(params->p2, 0.85);
    EXPECT_GE(params->target_mi, 0.5);
    EXPECT_LE(params->target_mi, 3.0);
    // The CLT approximation is good at m = 512: exact MI should be within
    // ~25% of the bivariate-normal target used for selection.
    EXPECT_NEAR(params->true_mi, params->target_mi,
                0.05 + 0.25 * params->target_mi);
  }
}

TEST(TrinomialTest, SamplerMatchesMarginalMoments) {
  Rng rng(5);
  TrinomialParams params;
  params.trials = 100;
  params.p1 = 0.3;
  params.p2 = 0.4;
  std::vector<int64_t> xs, ys;
  SampleTrinomial(params, 50000, rng, &xs, &ys);
  double mx = 0, my = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    mx += static_cast<double>(xs[i]);
    my += static_cast<double>(ys[i]);
  }
  mx /= static_cast<double>(xs.size());
  my /= static_cast<double>(ys.size());
  EXPECT_NEAR(mx, 30.0, 0.3);
  EXPECT_NEAR(my, 40.0, 0.3);
  // Support constraint: X + Y <= m.
  for (size_t i = 0; i < xs.size(); ++i) {
    ASSERT_LE(xs[i] + ys[i], 100);
    ASSERT_GE(xs[i], 0);
    ASSERT_GE(ys[i], 0);
  }
}

TEST(TrinomialTest, SampledMIMatchesExactMI) {
  // Estimate MI from a large sample; must approach the open-form value.
  Rng rng(7);
  auto params = *SampleTrinomialParams(64, rng, 1.0, 2.0);
  std::vector<int64_t> xs, ys;
  SampleTrinomial(params, 30000, rng, &xs, &ys);
  PairedSample sample;
  for (size_t i = 0; i < xs.size(); ++i) {
    sample.x.emplace_back(xs[i]);
    sample.y.emplace_back(ys[i]);
  }
  const double estimated = *EstimateMI(MIEstimatorKind::kMLE, sample);
  EXPECT_NEAR(estimated, params.true_mi, 0.1);
}

TEST(TrinomialTest, RejectsBadArguments) {
  Rng rng(9);
  EXPECT_FALSE(SampleTrinomialParams(0, rng).ok());
}

// ------------------------------------------------------------------ CDUnif

TEST(CDUnifTest, ClosedFormKnownValues) {
  EXPECT_EQ(CDUnifExactMI(1), 0.0);
  // m = 2: log 2 - (1/2) log 2 = 0.5 log 2.
  EXPECT_NEAR(CDUnifExactMI(2), 0.5 * std::log(2.0), 1e-12);
  // Monotone in m, approaching log(m) - log(2).
  EXPECT_LT(CDUnifExactMI(16), CDUnifExactMI(256));
  EXPECT_NEAR(CDUnifExactMI(100000), std::log(100000.0) - std::log(2.0), 1e-4);
  // Paper quote: m = 256 ~ I = 4.85.
  EXPECT_NEAR(CDUnifExactMI(256), 4.85, 0.01);
}

TEST(CDUnifTest, SampleRangesAndDependence) {
  Rng rng(11);
  std::vector<int64_t> xs;
  std::vector<double> ys;
  ASSERT_TRUE(SampleCDUnif(8, 20000, rng, &xs, &ys).ok());
  for (size_t i = 0; i < xs.size(); ++i) {
    ASSERT_GE(xs[i], 0);
    ASSERT_LT(xs[i], 8);
    ASSERT_GE(ys[i], static_cast<double>(xs[i]));
    ASSERT_LE(ys[i], static_cast<double>(xs[i]) + 2.0);
  }
  EXPECT_FALSE(SampleCDUnif(0, 10, rng, &xs, &ys).ok());
}

TEST(CDUnifTest, EstimatedMIMatchesClosedForm) {
  Rng rng(13);
  std::vector<int64_t> xs;
  std::vector<double> ys;
  ASSERT_TRUE(SampleCDUnif(4, 20000, rng, &xs, &ys).ok());
  std::vector<Value> x_values;
  for (int64_t x : xs) x_values.emplace_back(x);
  PairedSample sample;
  sample.x = x_values;
  for (double y : ys) sample.y.emplace_back(y);
  const double dc = *EstimateMI(MIEstimatorKind::kDCKSG, sample);
  EXPECT_NEAR(dc, CDUnifExactMI(4), 0.1);
}

// --------------------------------------------------------------- Decompose

std::vector<Value> IntValues(std::initializer_list<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.emplace_back(x);
  return out;
}

TEST(DecomposeTest, KeyIndOneToOne) {
  auto tables = *DecomposeIntoTables(IntValues({5, 7, 5}),
                                     IntValues({1, 2, 3}), KeyScheme::kKeyInd);
  EXPECT_EQ(tables.train->num_rows(), 3u);
  EXPECT_EQ(tables.cand->num_rows(), 3u);
  // Keys are sequential and unique.
  auto keys = *tables.train->GetColumn(kKeyColumn);
  EXPECT_EQ(keys->CountDistinct(), 3u);
  EXPECT_EQ(keys->Int64At(0), 0);
  EXPECT_EQ(keys->Int64At(2), 2);
}

TEST(DecomposeTest, KeyDepManyToOne) {
  auto tables = *DecomposeIntoTables(IntValues({5, 7, 5, 5}),
                                     IntValues({1, 2, 3, 4}),
                                     KeyScheme::kKeyDep);
  // Train keeps one row per sample; keys repeat with X's distribution.
  EXPECT_EQ(tables.train->num_rows(), 4u);
  auto train_keys = *tables.train->GetColumn(kKeyColumn);
  EXPECT_EQ(train_keys->CountDistinct(), 2u);
  // Candidate has one row per distinct X, mapping k -> k.
  EXPECT_EQ(tables.cand->num_rows(), 2u);
  auto cand_keys = *tables.cand->GetColumn(kKeyColumn);
  auto cand_values = *tables.cand->GetColumn(kFeatureColumn);
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(cand_keys->GetValue(r), cand_values->GetValue(r));
  }
}

TEST(DecomposeTest, KeyDepRejectsContinuousX) {
  EXPECT_FALSE(DecomposeIntoTables({Value(1.5), Value(2.5)},
                                   IntValues({1, 2}), KeyScheme::kKeyDep)
                   .ok());
}

TEST(DecomposeTest, ErrorsOnBadInput) {
  EXPECT_FALSE(
      DecomposeIntoTables({}, {}, KeyScheme::kKeyInd).ok());
  EXPECT_FALSE(DecomposeIntoTables(IntValues({1}), IntValues({1, 2}),
                                   KeyScheme::kKeyInd)
                   .ok());
}

class DecomposeRoundTripTest : public testing::TestWithParam<KeyScheme> {};

TEST_P(DecomposeRoundTripTest, JoinRecoversExactSample) {
  // Decompose then re-join; the joined (X, Y) multiset must equal the
  // original sample (the paper: "both methods enable table joins that
  // exactly recover (X, Y)").
  Rng rng(17);
  std::vector<Value> xs, ys;
  for (int i = 0; i < 500; ++i) {
    xs.emplace_back(static_cast<int64_t>(rng.NextBounded(20)));
    ys.emplace_back(static_cast<int64_t>(rng.NextBounded(9)));
  }
  auto tables = *DecomposeIntoTables(xs, ys, GetParam());
  auto joined = *LeftJoinAggregate(*tables.train, kKeyColumn, kTargetColumn,
                                   *tables.cand, kKeyColumn, kFeatureColumn,
                                   {AggKind::kFirst, true, "X"});
  ASSERT_EQ(joined.table->num_rows(), 500u);
  EXPECT_EQ(joined.unmatched_rows, 0u);
  // Compare joint multisets via sorted (x, y) pair lists.
  auto x_col = *joined.table->GetColumn("X");
  auto y_col = *joined.table->GetColumn(kTargetColumn);
  std::vector<std::pair<int64_t, int64_t>> expected, actual;
  for (size_t i = 0; i < 500; ++i) {
    expected.emplace_back(xs[i].int64(), ys[i].int64());
    actual.emplace_back(x_col->GetValue(i).int64(),
                        y_col->GetValue(i).int64());
  }
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(expected, actual);
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, DecomposeRoundTripTest,
                         testing::Values(KeyScheme::kKeyInd,
                                         KeyScheme::kKeyDep),
                         [](const testing::TestParamInfo<KeyScheme>& info) {
                           return KeySchemeToString(info.param);
                         });

// ---------------------------------------------------------------- Pipeline

TEST(PipelineTest, TrinomialDatasetEndToEnd) {
  SyntheticSpec spec;
  spec.distribution = SyntheticDistribution::kTrinomial;
  spec.m = 64;
  spec.num_rows = 2000;
  spec.key_scheme = KeyScheme::kKeyDep;
  spec.seed = 21;
  auto dataset = GenerateSyntheticDataset(spec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->xs.size(), 2000u);
  EXPECT_GT(dataset->true_mi, 0.0);
  EXPECT_EQ(dataset->tables.train->num_rows(), 2000u);
  // Full-join MI estimate should approximate the analytic MI.
  auto joined = *LeftJoinAggregate(
      *dataset->tables.train, kKeyColumn, kTargetColumn,
      *dataset->tables.cand, kKeyColumn, kFeatureColumn,
      {AggKind::kFirst, true, "X"});
  PairedSample sample;
  auto x_col = *joined.table->GetColumn("X");
  auto y_col = *joined.table->GetColumn(kTargetColumn);
  for (size_t r = 0; r < joined.table->num_rows(); ++r) {
    sample.x.push_back(x_col->GetValue(r));
    sample.y.push_back(y_col->GetValue(r));
  }
  const double estimated = *EstimateMI(MIEstimatorKind::kMLE, sample);
  EXPECT_NEAR(estimated, dataset->true_mi, 0.35);
}

TEST(PipelineTest, CDUnifDatasetEndToEnd) {
  SyntheticSpec spec;
  spec.distribution = SyntheticDistribution::kCDUnif;
  spec.m = 16;
  spec.num_rows = 5000;
  spec.key_scheme = KeyScheme::kKeyInd;
  spec.seed = 23;
  auto dataset = GenerateSyntheticDataset(spec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_NEAR(dataset->true_mi, CDUnifExactMI(16), 1e-12);
  // Y must be continuous (double), X discrete (int64).
  EXPECT_TRUE(dataset->ys[0].is_double());
  EXPECT_TRUE(dataset->xs[0].is_int64());
}

TEST(PipelineTest, DeterministicPerSeed) {
  SyntheticSpec spec;
  spec.m = 32;
  spec.num_rows = 100;
  spec.seed = 31;
  auto a = *GenerateSyntheticDataset(spec);
  auto b = *GenerateSyntheticDataset(spec);
  EXPECT_EQ(a.true_mi, b.true_mi);
  for (size_t i = 0; i < a.xs.size(); ++i) {
    ASSERT_EQ(a.xs[i], b.xs[i]);
    ASSERT_EQ(a.ys[i], b.ys[i]);
  }
  spec.seed = 32;
  auto c = *GenerateSyntheticDataset(spec);
  EXPECT_NE(a.true_mi, c.true_mi);
}

TEST(PipelineTest, RejectsEmptySpec) {
  SyntheticSpec spec;
  spec.num_rows = 0;
  EXPECT_FALSE(GenerateSyntheticDataset(spec).ok());
}

}  // namespace
}  // namespace joinmi
