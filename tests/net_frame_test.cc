// Tests for the JMRP wire layer: frame decoding under truncation,
// oversized length prefixes, bad magic/version/type tags; frame transport
// over a real socketpair; and the typed rpc message codecs (handshake,
// search request/response, health, error) including their corruption
// rejection. The shard-serving protocol's safety against a corrupt or
// hostile peer lives entirely in these decoders.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstring>
#include <string>
#include <thread>

#include "src/discovery/rpc_messages.h"
#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/sketch/serialize.h"

namespace joinmi {
namespace {

using net::DecodeFrame;
using net::EncodeFrame;
using net::Frame;
using net::FrameType;

// ------------------------------------------------------------ Frame codec

TEST(FrameCodecTest, RoundTripsEveryType) {
  for (FrameType type :
       {FrameType::kHandshakeRequest, FrameType::kHandshakeResponse,
        FrameType::kSearchRequest, FrameType::kSearchResponse,
        FrameType::kHealthRequest, FrameType::kHealthResponse,
        FrameType::kError}) {
    const std::string payload = "payload for " +
                                std::string(net::FrameTypeToString(type));
    const std::string encoded = EncodeFrame(type, payload);
    EXPECT_EQ(encoded.size(), net::kFrameHeaderSize + payload.size());
    auto decoded = DecodeFrame(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->payload, payload);
  }
}

TEST(FrameCodecTest, RoundTripsEmptyPayload) {
  const std::string encoded = EncodeFrame(FrameType::kHealthRequest, "");
  auto decoded = DecodeFrame(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(FrameCodecTest, RejectsBadMagic) {
  std::string encoded = EncodeFrame(FrameType::kSearchRequest, "x");
  encoded[0] = 'X';
  auto decoded = DecodeFrame(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
}

TEST(FrameCodecTest, RejectsWrongProtocolVersion) {
  std::string encoded = EncodeFrame(FrameType::kSearchRequest, "x");
  const uint32_t bogus = net::kProtocolVersion + 1;
  std::memcpy(&encoded[4], &bogus, sizeof(bogus));
  auto decoded = DecodeFrame(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(FrameCodecTest, RejectsUnknownFrameType) {
  std::string encoded = EncodeFrame(FrameType::kSearchRequest, "x");
  encoded[8] = 0;  // below the first valid tag
  EXPECT_FALSE(DecodeFrame(encoded).ok());
  encoded[8] = 99;  // above the last valid tag
  EXPECT_FALSE(DecodeFrame(encoded).ok());
}

TEST(FrameCodecTest, RejectsTruncationAtEveryLength) {
  const std::string encoded =
      EncodeFrame(FrameType::kSearchRequest, "some payload bytes");
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodeFrame(encoded.substr(0, len)).ok()) << len;
  }
  ASSERT_TRUE(DecodeFrame(encoded).ok());
}

TEST(FrameCodecTest, RejectsTrailingBytes) {
  const std::string encoded = EncodeFrame(FrameType::kError, "abc");
  EXPECT_FALSE(DecodeFrame(encoded + "z").ok());
}

TEST(FrameCodecTest, RejectsOversizedLengthPrefix) {
  // A header whose declared payload length exceeds the hard bound must be
  // rejected before any allocation happens — craft it by hand.
  std::string encoded = EncodeFrame(FrameType::kSearchRequest, "");
  const uint32_t huge = net::kMaxFramePayload + 1;
  std::memcpy(&encoded[9], &huge, sizeof(huge));
  auto decoded = DecodeFrame(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("bound"), std::string::npos);
}

TEST(FrameCodecTest, SendRefusesOversizedPayload) {
  // SendFrame's own guard (the socket never sees the bytes). Socket is
  // default-constructed/invalid; the size check fires first.
  net::Socket invalid;
  std::string big;
  big.resize(net::kMaxFramePayload + 1);
  const Status status =
      net::SendFrame(&invalid, FrameType::kSearchRequest, big);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
}

// ------------------------------------------------------- Socket transport

/// A connected local socket pair for transport tests without TCP setup.
struct SocketPair {
  net::Socket a;
  net::Socket b;
};

SocketPair MakeSocketPair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketPair pair;
  pair.a = net::Socket(fds[0]);
  pair.b = net::Socket(fds[1]);
  return pair;
}

TEST(FrameTransportTest, SendsAndReceivesOverSocketPair) {
  SocketPair pair = MakeSocketPair();
  const std::string payload(100000, 'q');  // bigger than one segment
  std::thread sender([&pair, &payload] {
    ASSERT_TRUE(net::SendFrame(&pair.a, FrameType::kSearchResponse, payload)
                    .ok());
  });
  auto frame = net::RecvFrame(&pair.b);
  sender.join();
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, FrameType::kSearchResponse);
  EXPECT_EQ(frame->payload, payload);
}

TEST(FrameTransportTest, PeerCloseSurfacesAsClosedError) {
  SocketPair pair = MakeSocketPair();
  pair.a.Close();
  auto frame = net::RecvFrame(&pair.b);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("closed"), std::string::npos);
}

TEST(FrameTransportTest, GarbageOnTheWireIsRejected) {
  SocketPair pair = MakeSocketPair();
  const std::string garbage = "this is not a JMRP frame, sorry";
  ASSERT_TRUE(pair.a.WriteAll(garbage.data(), garbage.size()).ok());
  pair.a.Close();
  EXPECT_FALSE(net::RecvFrame(&pair.b).ok());
}

TEST(FrameTransportTest, ReportsBytesWrittenOnClosedPeer) {
  SocketPair pair = MakeSocketPair();
  pair.b.Close();
  // Writing into a closed pair eventually fails (EPIPE, not SIGPIPE);
  // bytes_written must reflect what actually left, which the retry policy
  // depends on. The first small write may be buffered, so push enough.
  std::string big(1 << 22, 'x');
  size_t written = 12345;
  Status status = Status::OK();
  for (int i = 0; i < 8 && status.ok(); ++i) {
    status = pair.a.WriteAll(big.data(), big.size(), &written);
  }
  ASSERT_FALSE(status.ok());
}

// ---------------------------------------------------------- Message codecs

TEST(RpcMessageTest, StatusRoundTrips) {
  for (const Status& status :
       {Status::OK(), Status::InvalidArgument("bad arg"),
        Status::IOError("io"), Status::OutOfRange(""),
        Status::UnknownError("???")}) {
    std::string buffer;
    rpc::AppendStatus(&buffer, status);
    wire::Reader reader(buffer);
    Status decoded;
    ASSERT_TRUE(rpc::ReadStatus(&reader, &decoded).ok());
    EXPECT_EQ(decoded.code(), status.code());
    EXPECT_EQ(decoded.message(), status.message());
  }
}

TEST(RpcMessageTest, StatusRejectsUnknownCodeTag) {
  std::string buffer;
  rpc::AppendStatus(&buffer, Status::IOError("x"));
  buffer[0] = 99;
  wire::Reader reader(buffer);
  Status decoded;
  EXPECT_FALSE(rpc::ReadStatus(&reader, &decoded).ok());
}

TEST(RpcMessageTest, HandshakeResponseRoundTrips) {
  rpc::HandshakeResponse response;
  response.config.sketch_capacity = 512;
  response.config.hash_seed = 77;
  response.config.min_join_size = 100;
  response.config.estimator = MIEstimatorKind::kMixedKSG;
  response.num_candidates = 12345;
  auto decoded =
      rpc::DecodeHandshakeResponse(rpc::EncodeHandshakeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->config == response.config);
  EXPECT_EQ(decoded->num_candidates, 12345u);
}

TEST(RpcMessageTest, SearchRequestRoundTripsAndRejectsCorruption) {
  rpc::SearchRequest request;
  request.train_sketch = std::string("\x01\x02\x03sketchy", 10);
  request.k = 7;
  request.min_join_size = 64;
  const std::string payload = rpc::EncodeSearchRequest(request);
  auto decoded = rpc::DecodeSearchRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->train_sketch, request.train_sketch);
  EXPECT_EQ(decoded->k, 7u);
  EXPECT_EQ(decoded->min_join_size, 64u);

  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(rpc::DecodeSearchRequest(payload.substr(0, len)).ok())
        << len;
  }
  EXPECT_FALSE(rpc::DecodeSearchRequest(payload + "x").ok());
}

TEST(RpcMessageTest, SearchResponseRoundTripsHitsExactly) {
  rpc::SearchResponse response;
  response.status = Status::OK();
  response.result.num_candidates = 10;
  response.result.num_evaluated = 8;
  response.result.num_skipped = 1;
  response.result.num_errors = 1;
  ShardSearchHit hit;
  hit.global_index = 42;
  hit.ref = ColumnPairRef{"weather", "zip", "temp"};
  hit.estimate.mi = 1.25;
  hit.estimate.estimator = MIEstimatorKind::kDCKSG;
  hit.estimate.sample_size = 256;
  hit.estimate.sketched = true;
  response.result.hits.push_back(hit);
  hit.global_index = 7;
  hit.estimate.mi = 0.5;
  response.result.hits.push_back(hit);

  const std::string payload = rpc::EncodeSearchResponse(response);
  auto decoded = rpc::DecodeSearchResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->result.num_candidates, 10u);
  EXPECT_EQ(decoded->result.num_evaluated, 8u);
  EXPECT_EQ(decoded->result.num_skipped, 1u);
  EXPECT_EQ(decoded->result.num_errors, 1u);
  ASSERT_EQ(decoded->result.hits.size(), 2u);
  EXPECT_EQ(decoded->result.hits[0].global_index, 42u);
  EXPECT_EQ(decoded->result.hits[0].ref.table_name, "weather");
  EXPECT_EQ(decoded->result.hits[0].ref.key_column, "zip");
  EXPECT_EQ(decoded->result.hits[0].ref.value_column, "temp");
  EXPECT_EQ(decoded->result.hits[0].estimate.mi, 1.25);
  EXPECT_EQ(decoded->result.hits[0].estimate.estimator,
            MIEstimatorKind::kDCKSG);
  EXPECT_EQ(decoded->result.hits[0].estimate.sample_size, 256u);
  EXPECT_TRUE(decoded->result.hits[0].estimate.sketched);
  EXPECT_EQ(decoded->result.hits[1].global_index, 7u);
  EXPECT_EQ(decoded->result.hits[1].estimate.mi, 0.5);

  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(rpc::DecodeSearchResponse(payload.substr(0, len)).ok())
        << len;
  }
}

TEST(RpcMessageTest, ErrorSearchResponseCarriesStatusOnly) {
  rpc::SearchResponse response;
  response.status = Status::OutOfRange("join too small");
  const std::string payload = rpc::EncodeSearchResponse(response);
  auto decoded = rpc::DecodeSearchResponse(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->status.IsOutOfRange());
  EXPECT_EQ(decoded->status.message(), "join too small");
  EXPECT_TRUE(decoded->result.hits.empty());
}

TEST(RpcMessageTest, SearchResponseRejectsLyingHitCount) {
  rpc::SearchResponse response;
  response.status = Status::OK();
  const std::string payload = rpc::EncodeSearchResponse(response);
  // The hit count is the last u64; claim many hits with no bytes behind
  // them. The divide-side bound check must reject before reserving.
  std::string lying = payload;
  const uint64_t huge = ~0ULL / 2;
  std::memcpy(&lying[lying.size() - 8], &huge, sizeof(huge));
  EXPECT_FALSE(rpc::DecodeSearchResponse(lying).ok());
}

TEST(RpcMessageTest, HealthAndErrorRoundTrip) {
  rpc::HealthResponse health;
  health.num_candidates = 31;
  health.requests_served = 99;
  auto decoded_health =
      rpc::DecodeHealthResponse(rpc::EncodeHealthResponse(health));
  ASSERT_TRUE(decoded_health.ok());
  EXPECT_EQ(decoded_health->num_candidates, 31u);
  EXPECT_EQ(decoded_health->requests_served, 99u);
  EXPECT_FALSE(rpc::DecodeHealthResponse("short").ok());

  Status decoded_error;
  ASSERT_TRUE(rpc::DecodeErrorPayload(
                  rpc::EncodeErrorPayload(Status::IOError("shard on fire")),
                  &decoded_error)
                  .ok());
  EXPECT_TRUE(decoded_error.IsIOError());
  EXPECT_EQ(decoded_error.message(), "shard on fire");
}

}  // namespace
}  // namespace joinmi
