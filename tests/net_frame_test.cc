// Tests for the JMRP wire layer: frame decoding under truncation,
// oversized length prefixes, bad magic/version/type tags; frame transport
// over a real socketpair; and the typed rpc message codecs (handshake,
// search request/response, health, error) including their corruption
// rejection. The shard-serving protocol's safety against a corrupt or
// hostile peer lives entirely in these decoders.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstring>
#include <string>
#include <thread>

#include "src/discovery/rpc_messages.h"
#include "src/net/frame.h"
#include "src/net/socket.h"
#include "src/sketch/serialize.h"

namespace joinmi {
namespace {

using net::DecodeFrame;
using net::EncodeFrame;
using net::Frame;
using net::FrameType;

// ------------------------------------------------------------ Frame codec

TEST(FrameCodecTest, RoundTripsEveryType) {
  for (FrameType type :
       {FrameType::kHandshakeRequest, FrameType::kHandshakeResponse,
        FrameType::kSearchRequest, FrameType::kSearchResponse,
        FrameType::kHealthRequest, FrameType::kHealthResponse,
        FrameType::kError}) {
    const std::string payload = "payload for " +
                                std::string(net::FrameTypeToString(type));
    const std::string encoded = EncodeFrame(type, payload);
    EXPECT_EQ(encoded.size(), net::kFrameHeaderSize + payload.size());
    auto decoded = DecodeFrame(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->payload, payload);
  }
}

TEST(FrameCodecTest, RoundTripsEmptyPayload) {
  const std::string encoded = EncodeFrame(FrameType::kHealthRequest, "");
  auto decoded = DecodeFrame(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(FrameCodecTest, RejectsBadMagic) {
  std::string encoded = EncodeFrame(FrameType::kSearchRequest, "x");
  encoded[0] = 'X';
  auto decoded = DecodeFrame(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
}

TEST(FrameCodecTest, RejectsWrongProtocolVersion) {
  std::string encoded = EncodeFrame(FrameType::kSearchRequest, "x");
  const uint32_t bogus = net::kProtocolVersion + 1;
  std::memcpy(&encoded[4], &bogus, sizeof(bogus));
  auto decoded = DecodeFrame(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(FrameCodecTest, RejectsUnknownFrameType) {
  std::string encoded = EncodeFrame(FrameType::kSearchRequest, "x");
  encoded[8] = 0;  // below the first valid tag
  EXPECT_FALSE(DecodeFrame(encoded).ok());
  encoded[8] = 99;  // above the last valid tag
  EXPECT_FALSE(DecodeFrame(encoded).ok());
}

TEST(FrameCodecTest, RejectsTruncationAtEveryLength) {
  const std::string encoded =
      EncodeFrame(FrameType::kSearchRequest, "some payload bytes");
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodeFrame(encoded.substr(0, len)).ok()) << len;
  }
  ASSERT_TRUE(DecodeFrame(encoded).ok());
}

TEST(FrameCodecTest, RejectsTrailingBytes) {
  const std::string encoded = EncodeFrame(FrameType::kError, "abc");
  EXPECT_FALSE(DecodeFrame(encoded + "z").ok());
}

TEST(FrameCodecTest, RejectsOversizedLengthPrefix) {
  // A header whose declared payload length exceeds the hard bound must be
  // rejected before any allocation happens — craft it by hand.
  std::string encoded = EncodeFrame(FrameType::kSearchRequest, "");
  const uint32_t huge = net::kMaxFramePayload + 1;
  std::memcpy(&encoded[9], &huge, sizeof(huge));
  auto decoded = DecodeFrame(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("bound"), std::string::npos);
}

TEST(FrameCodecTest, SendRefusesOversizedPayload) {
  // SendFrame's own guard (the socket never sees the bytes). Socket is
  // default-constructed/invalid; the size check fires first.
  net::Socket invalid;
  std::string big;
  big.resize(net::kMaxFramePayload + 1);
  const Status status =
      net::SendFrame(&invalid, FrameType::kSearchRequest, big);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
}

// ------------------------------------------------------- Socket transport

/// A connected local socket pair for transport tests without TCP setup.
struct SocketPair {
  net::Socket a;
  net::Socket b;
};

SocketPair MakeSocketPair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  SocketPair pair;
  pair.a = net::Socket(fds[0]);
  pair.b = net::Socket(fds[1]);
  return pair;
}

TEST(FrameTransportTest, SendsAndReceivesOverSocketPair) {
  SocketPair pair = MakeSocketPair();
  const std::string payload(100000, 'q');  // bigger than one segment
  std::thread sender([&pair, &payload] {
    ASSERT_TRUE(net::SendFrame(&pair.a, FrameType::kSearchResponse, payload)
                    .ok());
  });
  auto frame = net::RecvFrame(&pair.b);
  sender.join();
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, FrameType::kSearchResponse);
  EXPECT_EQ(frame->payload, payload);
}

TEST(FrameTransportTest, PeerCloseSurfacesAsClosedError) {
  SocketPair pair = MakeSocketPair();
  pair.a.Close();
  auto frame = net::RecvFrame(&pair.b);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find("closed"), std::string::npos);
}

TEST(FrameTransportTest, GarbageOnTheWireIsRejected) {
  SocketPair pair = MakeSocketPair();
  const std::string garbage = "this is not a JMRP frame, sorry";
  ASSERT_TRUE(pair.a.WriteAll(garbage.data(), garbage.size()).ok());
  pair.a.Close();
  EXPECT_FALSE(net::RecvFrame(&pair.b).ok());
}

TEST(FrameTransportTest, ReportsBytesWrittenOnClosedPeer) {
  SocketPair pair = MakeSocketPair();
  pair.b.Close();
  // Writing into a closed pair eventually fails (EPIPE, not SIGPIPE);
  // bytes_written must reflect what actually left, which the retry policy
  // depends on. The first small write may be buffered, so push enough.
  std::string big(1 << 22, 'x');
  size_t written = 12345;
  Status status = Status::OK();
  for (int i = 0; i < 8 && status.ok(); ++i) {
    status = pair.a.WriteAll(big.data(), big.size(), &written);
  }
  ASSERT_FALSE(status.ok());
}

// ---------------------------------------------------------- Message codecs

TEST(RpcMessageTest, StatusRoundTrips) {
  for (const Status& status :
       {Status::OK(), Status::InvalidArgument("bad arg"),
        Status::IOError("io"), Status::OutOfRange(""),
        Status::UnknownError("???")}) {
    std::string buffer;
    rpc::AppendStatus(&buffer, status);
    wire::Reader reader(buffer);
    Status decoded;
    ASSERT_TRUE(rpc::ReadStatus(&reader, &decoded).ok());
    EXPECT_EQ(decoded.code(), status.code());
    EXPECT_EQ(decoded.message(), status.message());
  }
}

TEST(RpcMessageTest, StatusRejectsUnknownCodeTag) {
  std::string buffer;
  rpc::AppendStatus(&buffer, Status::IOError("x"));
  buffer[0] = 99;
  wire::Reader reader(buffer);
  Status decoded;
  EXPECT_FALSE(rpc::ReadStatus(&reader, &decoded).ok());
}

TEST(RpcMessageTest, HandshakeResponseRoundTrips) {
  rpc::HandshakeResponse response;
  response.config.sketch_capacity = 512;
  response.config.hash_seed = 77;
  response.config.min_join_size = 100;
  response.config.estimator = MIEstimatorKind::kMixedKSG;
  response.num_candidates = 12345;
  auto decoded =
      rpc::DecodeHandshakeResponse(rpc::EncodeHandshakeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->config == response.config);
  EXPECT_EQ(decoded->num_candidates, 12345u);
}

TEST(RpcMessageTest, SearchRequestRoundTripsAndRejectsCorruption) {
  rpc::SearchRequest request;
  request.train_sketch = std::string("\x01\x02\x03sketchy", 10);
  request.k = 7;
  request.min_join_size = 64;
  const std::string payload = rpc::EncodeSearchRequest(request);
  auto decoded = rpc::DecodeSearchRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->train_sketch, request.train_sketch);
  EXPECT_EQ(decoded->k, 7u);
  EXPECT_EQ(decoded->min_join_size, 64u);

  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(rpc::DecodeSearchRequest(payload.substr(0, len)).ok())
        << len;
  }
  EXPECT_FALSE(rpc::DecodeSearchRequest(payload + "x").ok());
}

TEST(RpcMessageTest, SearchResponseRoundTripsHitsExactly) {
  rpc::SearchResponse response;
  response.status = Status::OK();
  response.result.num_candidates = 10;
  response.result.num_evaluated = 8;
  response.result.num_skipped = 1;
  response.result.num_errors = 1;
  ShardSearchHit hit;
  hit.global_index = 42;
  hit.ref = ColumnPairRef{"weather", "zip", "temp"};
  hit.estimate.mi = 1.25;
  hit.estimate.estimator = MIEstimatorKind::kDCKSG;
  hit.estimate.sample_size = 256;
  hit.estimate.sketched = true;
  response.result.hits.push_back(hit);
  hit.global_index = 7;
  hit.estimate.mi = 0.5;
  response.result.hits.push_back(hit);

  const std::string payload = rpc::EncodeSearchResponse(response);
  auto decoded = rpc::DecodeSearchResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->result.num_candidates, 10u);
  EXPECT_EQ(decoded->result.num_evaluated, 8u);
  EXPECT_EQ(decoded->result.num_skipped, 1u);
  EXPECT_EQ(decoded->result.num_errors, 1u);
  ASSERT_EQ(decoded->result.hits.size(), 2u);
  EXPECT_EQ(decoded->result.hits[0].global_index, 42u);
  EXPECT_EQ(decoded->result.hits[0].ref.table_name, "weather");
  EXPECT_EQ(decoded->result.hits[0].ref.key_column, "zip");
  EXPECT_EQ(decoded->result.hits[0].ref.value_column, "temp");
  EXPECT_EQ(decoded->result.hits[0].estimate.mi, 1.25);
  EXPECT_EQ(decoded->result.hits[0].estimate.estimator,
            MIEstimatorKind::kDCKSG);
  EXPECT_EQ(decoded->result.hits[0].estimate.sample_size, 256u);
  EXPECT_TRUE(decoded->result.hits[0].estimate.sketched);
  EXPECT_EQ(decoded->result.hits[1].global_index, 7u);
  EXPECT_EQ(decoded->result.hits[1].estimate.mi, 0.5);

  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(rpc::DecodeSearchResponse(payload.substr(0, len)).ok())
        << len;
  }
}

TEST(RpcMessageTest, ErrorSearchResponseCarriesStatusOnly) {
  rpc::SearchResponse response;
  response.status = Status::OutOfRange("join too small");
  const std::string payload = rpc::EncodeSearchResponse(response);
  auto decoded = rpc::DecodeSearchResponse(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->status.IsOutOfRange());
  EXPECT_EQ(decoded->status.message(), "join too small");
  EXPECT_TRUE(decoded->result.hits.empty());
}

TEST(RpcMessageTest, SearchResponseRejectsLyingHitCount) {
  rpc::SearchResponse response;
  response.status = Status::OK();
  const std::string payload = rpc::EncodeSearchResponse(response);
  // The hit count is the last u64; claim many hits with no bytes behind
  // them. The divide-side bound check must reject before reserving.
  std::string lying = payload;
  const uint64_t huge = ~0ULL / 2;
  std::memcpy(&lying[lying.size() - 8], &huge, sizeof(huge));
  EXPECT_FALSE(rpc::DecodeSearchResponse(lying).ok());
}

TEST(RpcMessageTest, HealthAndErrorRoundTrip) {
  rpc::HealthResponse health;
  health.num_candidates = 31;
  health.requests_served = 99;
  auto decoded_health =
      rpc::DecodeHealthResponse(rpc::EncodeHealthResponse(health));
  ASSERT_TRUE(decoded_health.ok());
  EXPECT_EQ(decoded_health->num_candidates, 31u);
  EXPECT_EQ(decoded_health->requests_served, 99u);
  EXPECT_FALSE(rpc::DecodeHealthResponse("short").ok());

  Status decoded_error;
  ASSERT_TRUE(rpc::DecodeErrorPayload(
                  rpc::EncodeErrorPayload(Status::IOError("shard on fire")),
                  &decoded_error)
                  .ok());
  EXPECT_TRUE(decoded_error.IsIOError());
  EXPECT_EQ(decoded_error.message(), "shard on fire");
}

// --------------------------------------------------------- v2 frame codec

TEST(FrameV2CodecTest, RoundTripsRequestIdOnEveryType) {
  for (FrameType type :
       {FrameType::kHandshakeRequest, FrameType::kSearchRequest,
        FrameType::kSketchUploadRequest, FrameType::kSketchUploadResponse,
        FrameType::kBatchSearchRequest, FrameType::kBatchSearchResponse,
        FrameType::kError}) {
    const uint64_t id = 0x1122334455667788ULL;
    const std::string encoded = net::EncodeFrameV2(type, id, "abc");
    EXPECT_EQ(encoded.size(), net::kFrameV2HeaderSize + 3);
    auto decoded = DecodeFrame(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->version, 2u);
    EXPECT_EQ(decoded->request_id, id);
    EXPECT_EQ(decoded->payload, "abc");
  }
}

TEST(FrameV2CodecTest, V1FrameDecodesAsVersion1WithZeroRequestId) {
  auto decoded = DecodeFrame(EncodeFrame(FrameType::kSearchRequest, "x"));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->version, 1u);
  EXPECT_EQ(decoded->request_id, 0u);
}

TEST(FrameV2CodecTest, V2OnlyTypesRejectedInV1Header) {
  // A v1 header has no request_id to demux by, so the batched/upload
  // types must not parse under it.
  for (FrameType type :
       {FrameType::kSketchUploadRequest, FrameType::kSketchUploadResponse,
        FrameType::kBatchSearchRequest, FrameType::kBatchSearchResponse}) {
    const std::string encoded =
        net::EncodeFrameAs(1, type, /*request_id=*/0, "p");
    EXPECT_FALSE(DecodeFrame(encoded).ok())
        << net::FrameTypeToString(type);
  }
}

TEST(FrameV2CodecTest, RejectsTruncationAtEveryLength) {
  // Covers every new field boundary: bytes 13..20 are the request_id.
  const std::string encoded =
      net::EncodeFrameV2(FrameType::kBatchSearchRequest, 77, "payload");
  for (size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(DecodeFrame(encoded.substr(0, len)).ok()) << len;
  }
  ASSERT_TRUE(DecodeFrame(encoded).ok());
}

TEST(FrameV2CodecTest, RejectsVersion3) {
  std::string encoded = net::EncodeFrameV2(FrameType::kSearchRequest, 1, "");
  const uint32_t bogus = 3;
  std::memcpy(&encoded[4], &bogus, sizeof(bogus));
  EXPECT_FALSE(DecodeFrame(encoded).ok());
}

TEST(FrameV2CodecTest, EncodeFrameAsMatchesBothEncoders) {
  EXPECT_EQ(net::EncodeFrameAs(1, FrameType::kError, 99, "e"),
            EncodeFrame(FrameType::kError, "e"));  // id dropped in v1
  EXPECT_EQ(net::EncodeFrameAs(2, FrameType::kError, 99, "e"),
            net::EncodeFrameV2(FrameType::kError, 99, "e"));
}

TEST(FrameTransportTest, SendFrameV2RoundTripsOverSocketPair) {
  SocketPair pair = MakeSocketPair();
  const std::string payload(50000, 'v');
  std::thread sender([&pair, &payload] {
    ASSERT_TRUE(net::SendFrameV2(&pair.a, FrameType::kBatchSearchResponse,
                                 31337, payload)
                    .ok());
  });
  auto frame = net::RecvFrame(&pair.b);
  sender.join();
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, FrameType::kBatchSearchResponse);
  EXPECT_EQ(frame->version, 2u);
  EXPECT_EQ(frame->request_id, 31337u);
  EXPECT_EQ(frame->payload, payload);
}

// --------------------------------------------------------- FrameAssembler

TEST(FrameAssemblerTest, AssemblesMixedVersionsFedByteAtATime) {
  const std::string stream =
      EncodeFrame(FrameType::kSearchRequest, "first") +
      net::EncodeFrameV2(FrameType::kBatchSearchRequest, 5, "second") +
      EncodeFrame(FrameType::kHealthRequest, "");
  net::FrameAssembler assembler;
  std::vector<Frame> frames;
  for (char byte : stream) {
    assembler.Feed(&byte, 1);
    Frame frame;
    auto ready = assembler.Next(&frame);
    ASSERT_TRUE(ready.ok()) << ready.status();
    if (*ready) frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, FrameType::kSearchRequest);
  EXPECT_EQ(frames[0].payload, "first");
  EXPECT_EQ(frames[1].type, FrameType::kBatchSearchRequest);
  EXPECT_EQ(frames[1].request_id, 5u);
  EXPECT_EQ(frames[1].payload, "second");
  EXPECT_EQ(frames[2].type, FrameType::kHealthRequest);
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(FrameAssemblerTest, DrainsManyFramesFromOneFeed) {
  std::string stream;
  for (uint64_t id = 0; id < 20; ++id) {
    stream += net::EncodeFrameV2(FrameType::kSearchRequest, id,
                                 std::string(id, 'x'));
  }
  net::FrameAssembler assembler;
  assembler.Feed(stream.data(), stream.size());
  for (uint64_t id = 0; id < 20; ++id) {
    Frame frame;
    auto ready = assembler.Next(&frame);
    ASSERT_TRUE(ready.ok());
    ASSERT_TRUE(*ready) << id;
    EXPECT_EQ(frame.request_id, id);
    EXPECT_EQ(frame.payload.size(), id);
  }
  Frame frame;
  auto ready = assembler.Next(&frame);
  ASSERT_TRUE(ready.ok());
  EXPECT_FALSE(*ready);
}

TEST(FrameAssemblerTest, PoisonsOnCorruptHeaderAndStaysPoisoned) {
  net::FrameAssembler assembler;
  std::string bad = EncodeFrame(FrameType::kSearchRequest, "x");
  bad[0] = 'Z';
  assembler.Feed(bad.data(), bad.size());
  Frame frame;
  EXPECT_FALSE(assembler.Next(&frame).ok());
  // A later valid frame cannot resynchronize a corrupt byte stream.
  const std::string good = EncodeFrame(FrameType::kHealthRequest, "");
  assembler.Feed(good.data(), good.size());
  EXPECT_FALSE(assembler.Next(&frame).ok());
}

// ------------------------------------------------------ v2 message codecs

TEST(RpcMessageTest, HandshakeRequestV1ShapeIsEmptyAndDecodesAsV1) {
  rpc::HandshakeRequest legacy;
  legacy.max_version = 1;
  EXPECT_TRUE(rpc::EncodeHandshakeRequest(legacy).empty());
  // The empty payload — exactly what a v1 client sends — reads back as
  // max_version 1.
  auto decoded = rpc::DecodeHandshakeRequest("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->max_version, 1u);
}

TEST(RpcMessageTest, HandshakeRequestV2RoundTripsAndRejectsCorruption) {
  rpc::HandshakeRequest hello;
  hello.max_version = 2;
  const std::string payload = rpc::EncodeHandshakeRequest(hello);
  ASSERT_FALSE(payload.empty());
  auto decoded = rpc::DecodeHandshakeRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->max_version, 2u);
  for (size_t len = 1; len < payload.size(); ++len) {
    EXPECT_FALSE(rpc::DecodeHandshakeRequest(payload.substr(0, len)).ok())
        << len;
  }
  EXPECT_FALSE(rpc::DecodeHandshakeRequest(payload + "x").ok());
}

TEST(RpcMessageTest, HandshakeResponseCarriesProtocolVersionWhenV2) {
  rpc::HandshakeResponse response;
  response.config.sketch_capacity = 64;
  response.num_candidates = 5;
  response.protocol_version = 2;
  auto decoded =
      rpc::DecodeHandshakeResponse(rpc::EncodeHandshakeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->protocol_version, 2u);
  // The v1 shape (no trailing version field) decodes as version 1 — that
  // is how a new client detects an old server.
  response.protocol_version = 1;
  auto legacy =
      rpc::DecodeHandshakeResponse(rpc::EncodeHandshakeResponse(response));
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_EQ(legacy->protocol_version, 1u);
}

TEST(RpcMessageTest, SketchUploadRoundTripsAndRejectsCorruption) {
  rpc::SketchUploadRequest request;
  request.train_sketch = std::string("\x00\x01rawsketch", 11);
  request.digest = wire::Checksum64(request.train_sketch);
  const std::string payload = rpc::EncodeSketchUploadRequest(request);
  auto decoded = rpc::DecodeSketchUploadRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->digest, request.digest);
  EXPECT_EQ(decoded->train_sketch, request.train_sketch);
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(rpc::DecodeSketchUploadRequest(payload.substr(0, len)).ok())
        << len;
  }
  EXPECT_FALSE(rpc::DecodeSketchUploadRequest(payload + "x").ok());

  rpc::SketchUploadResponse ack;
  ack.status = Status::InvalidArgument("cache full");
  ack.digest = 42;
  auto decoded_ack =
      rpc::DecodeSketchUploadResponse(rpc::EncodeSketchUploadResponse(ack));
  ASSERT_TRUE(decoded_ack.ok());
  EXPECT_TRUE(decoded_ack->status.IsInvalidArgument());
  EXPECT_EQ(decoded_ack->digest, 42u);
}

TEST(RpcMessageTest, BatchSearchRequestRoundTripsZeroOneAndDuplicates) {
  for (size_t count : {0u, 1u, 3u}) {
    rpc::BatchSearchRequest request;
    request.sketch_digest = 0xfeedbeef;
    for (size_t i = 0; i < count; ++i) {
      rpc::BatchSearchVariant variant;
      variant.k = 4;             // duplicates on purpose when count == 3
      variant.min_join_size = 16;
      request.variants.push_back(variant);
    }
    const std::string payload = rpc::EncodeBatchSearchRequest(request);
    auto decoded = rpc::DecodeBatchSearchRequest(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->sketch_digest, 0xfeedbeefu);
    ASSERT_EQ(decoded->variants.size(), count);
    for (const auto& variant : decoded->variants) {
      EXPECT_EQ(variant.k, 4u);
      EXPECT_EQ(variant.min_join_size, 16u);
    }
    for (size_t len = 0; len < payload.size(); ++len) {
      EXPECT_FALSE(
          rpc::DecodeBatchSearchRequest(payload.substr(0, len)).ok())
          << count << ":" << len;
    }
    EXPECT_FALSE(rpc::DecodeBatchSearchRequest(payload + "x").ok());
  }
}

TEST(RpcMessageTest, BatchSearchRequestRejectsLyingVariantCount) {
  rpc::BatchSearchRequest request;
  request.sketch_digest = 1;
  const std::string payload = rpc::EncodeBatchSearchRequest(request);
  std::string lying = payload;
  const uint32_t huge = ~0u;
  std::memcpy(&lying[lying.size() - 4], &huge, sizeof(huge));
  EXPECT_FALSE(rpc::DecodeBatchSearchRequest(lying).ok());
}

TEST(RpcMessageTest, BatchSearchResponseRoundTripsNestedResponses) {
  rpc::BatchSearchResponse response;
  response.status = Status::OK();
  rpc::SearchResponse one;
  one.status = Status::OK();
  one.result.num_candidates = 3;
  ShardSearchHit hit;
  hit.global_index = 9;
  hit.ref = ColumnPairRef{"t", "k", "v"};
  hit.estimate.mi = 2.5;
  one.result.hits.push_back(hit);
  response.responses.push_back(one);
  rpc::SearchResponse two;
  two.status = Status::OutOfRange("small join");
  response.responses.push_back(two);

  const std::string payload = rpc::EncodeBatchSearchResponse(response);
  auto decoded = rpc::DecodeBatchSearchResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(decoded->status.ok());
  ASSERT_EQ(decoded->responses.size(), 2u);
  ASSERT_EQ(decoded->responses[0].result.hits.size(), 1u);
  EXPECT_EQ(decoded->responses[0].result.hits[0].global_index, 9u);
  EXPECT_EQ(decoded->responses[0].result.hits[0].estimate.mi, 2.5);
  EXPECT_TRUE(decoded->responses[1].status.IsOutOfRange());

  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(
        rpc::DecodeBatchSearchResponse(payload.substr(0, len)).ok())
        << len;
  }

  // A batch-level error carries no nested responses.
  rpc::BatchSearchResponse failed;
  failed.status = Status::InvalidArgument("unknown digest");
  auto decoded_failed =
      rpc::DecodeBatchSearchResponse(rpc::EncodeBatchSearchResponse(failed));
  ASSERT_TRUE(decoded_failed.ok());
  EXPECT_TRUE(decoded_failed->status.IsInvalidArgument());
  EXPECT_TRUE(decoded_failed->responses.empty());
}

}  // namespace
}  // namespace joinmi
