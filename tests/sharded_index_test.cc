// Tests for the sharded sketch index: bit-identical rank agreement with the
// unsharded search across shard counts and partitioning policies (including
// duplicated candidates straddling shard boundaries and empty shards), the
// "JMIM" manifest format, and corruption rejection — truncated, bit-flipped,
// and count-mismatched shard files must all fail with a clear
// InvalidArgument at load, never surface as wrong rankings.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/discovery/search.h"
#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/sketch/serialize.h"
#include "src/table/table.h"

namespace joinmi {
namespace {

std::shared_ptr<Table> MakeTwoColumnTable(const std::string& key_name,
                                          std::vector<std::string> keys,
                                          const std::string& value_name,
                                          std::vector<int64_t> values) {
  return *Table::FromColumns(
      {{key_name, Column::MakeString(std::move(keys))},
       {value_name, Column::MakeInt64(std::move(values))}});
}

/// Base table whose target is a function of the key, plus a repository of
/// candidates with graded relevance — several of which tie exactly, so the
/// merge's tie-breaks are actually exercised.
struct Universe {
  std::shared_ptr<Table> base;
  TableRepository repository;
};

Universe MakeUniverse() {
  Universe universe;
  Rng rng(7171);
  const size_t num_keys = 160;
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back("key" + std::to_string(i));
    targets.push_back(static_cast<int64_t>(i % 7));
  }
  universe.base = MakeTwoColumnTable("K", keys, "Y", targets);

  std::vector<int64_t> values;
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(i % 7));
  }
  auto exact = MakeTwoColumnTable("K", keys, "V", values);
  universe.repository.AddTable("exact", exact).Abort();
  // Exact twins: identical MI and join size, so cross-shard merges must
  // fall back to enumeration order to agree with the unsharded path.
  universe.repository.AddTable("exact_twin", exact).Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>((i % 7) / 3));
  }
  universe.repository
      .AddTable("coarse", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  values.clear();
  for (size_t i = 0; i < num_keys; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(7)));
  }
  universe.repository
      .AddTable("noise", MakeTwoColumnTable("K", keys, "V", values))
      .Abort();
  return universe;
}

JoinMIConfig MakeIndexConfig() {
  JoinMIConfig config;
  config.sketch_capacity = 128;
  config.min_join_size = 16;
  return config;
}

/// Fresh per-test scratch directory under the gtest temp dir.
std::string ScratchDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/joinmi_shards_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectBitIdentical(const TopKSearchResult& expected,
                        const TopKSearchResult& actual) {
  EXPECT_EQ(expected.num_candidates, actual.num_candidates);
  EXPECT_EQ(expected.num_evaluated, actual.num_evaluated);
  EXPECT_EQ(expected.num_skipped, actual.num_skipped);
  EXPECT_EQ(expected.num_errors, actual.num_errors);
  ASSERT_EQ(expected.hits.size(), actual.hits.size());
  for (size_t i = 0; i < expected.hits.size(); ++i) {
    EXPECT_EQ(expected.hits[i].candidate.table_name,
              actual.hits[i].candidate.table_name) << i;
    EXPECT_EQ(expected.hits[i].candidate.key_column,
              actual.hits[i].candidate.key_column) << i;
    EXPECT_EQ(expected.hits[i].candidate.value_column,
              actual.hits[i].candidate.value_column) << i;
    // Bit-exact: the estimate pipeline is fully seeded.
    EXPECT_EQ(expected.hits[i].estimate.mi, actual.hits[i].estimate.mi) << i;
    EXPECT_EQ(expected.hits[i].estimate.sample_size,
              actual.hits[i].estimate.sample_size) << i;
    EXPECT_EQ(expected.hits[i].estimate.estimator,
              actual.hits[i].estimate.estimator) << i;
  }
}

// ------------------------------------------------------- Rank agreement

TEST(ShardedSearchTest, AgreesWithUnshardedForEveryShardCountAndPolicy) {
  // The acceptance gate: for every K and both partitioners the sharded
  // fan-out must return rankings bit-identical to the unsharded index path,
  // after a full manifest + shard-file round trip through BuildShards.
  Universe universe = MakeUniverse();
  const JoinMIConfig config = MakeIndexConfig();
  SketchIndex index(config);
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ASSERT_EQ(index.size(), 4u);

  auto unsharded =
      TopKJoinMISearch(*universe.base, {"K", "Y"}, index, 10, 1);
  ASSERT_TRUE(unsharded.ok()) << unsharded.status();
  ASSERT_EQ(unsharded->hits.size(), 4u);

  for (ShardPartitionPolicy policy :
       {ShardPartitionPolicy::kRoundRobin,
        ShardPartitionPolicy::kHashByDataset}) {
    for (size_t num_shards : {1u, 2u, 3u, 7u}) {
      const std::string dir =
          ScratchDir(std::string("agree_") +
                     ShardPartitionPolicyToString(policy) + "_" +
                     std::to_string(num_shards));
      auto manifest_path = BuildShards(index, num_shards, policy, dir);
      ASSERT_TRUE(manifest_path.ok()) << manifest_path.status();
      auto sharded = ShardedSketchIndex::Load(*manifest_path);
      ASSERT_TRUE(sharded.ok()) << sharded.status();
      EXPECT_EQ(sharded->num_shards(), num_shards);
      EXPECT_EQ(sharded->size(), index.size());
      for (size_t num_threads : {1u, 4u, 0u}) {
        auto via_shards = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                           *sharded, 10, num_threads);
        ASSERT_TRUE(via_shards.ok()) << via_shards.status();
        ExpectBitIdentical(*unsharded, *via_shards);
      }
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(ShardedSearchTest, SmallKTruncatesIdenticallyToUnsharded) {
  // k smaller than the hit count forces per-shard truncation; the global
  // merge must still pick exactly what the unsharded partial sort picks —
  // with exact twins in the universe, only the global-index tie-break does.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  for (size_t k : {1u, 2u, 3u}) {
    auto unsharded =
        TopKJoinMISearch(*universe.base, {"K", "Y"}, index, k, 1);
    ASSERT_TRUE(unsharded.ok());
    ASSERT_EQ(unsharded->hits.size(), k);
    const std::string dir = ScratchDir("smallk_" + std::to_string(k));
    auto manifest_path = BuildShards(index, 3, ShardPartitionPolicy::kRoundRobin, dir);
    ASSERT_TRUE(manifest_path.ok());
    auto sharded = ShardedSketchIndex::Load(*manifest_path);
    ASSERT_TRUE(sharded.ok());
    auto via_shards =
        TopKJoinMISearch(*universe.base, {"K", "Y"}, *sharded, k, 1);
    ASSERT_TRUE(via_shards.ok());
    ExpectBitIdentical(*unsharded, *via_shards);
    std::filesystem::remove_all(dir);
  }
}

TEST(ShardedSearchTest, DuplicatedCandidatesStraddlingShardBoundaries) {
  // Four exact copies of one candidate tie on MI, join size, AND ref; with
  // round-robin over 3 shards the copies land on different shards, so only
  // the stored global insertion index keeps the merge aligned with the
  // unsharded ranking.
  Universe universe = MakeUniverse();
  const JoinMIConfig config = MakeIndexConfig();
  SketchIndex index(config);
  auto exact = *universe.repository.GetTable("exact");
  const ColumnPairRef ref{"exact", "K", "V"};
  for (int copy = 0; copy < 4; ++copy) {
    ASSERT_TRUE(index.AddCandidate(*exact, ref).ok());
  }
  auto noise = *universe.repository.GetTable("noise");
  ASSERT_TRUE(index.AddCandidate(*noise, {"noise", "K", "V"}).ok());

  auto unsharded =
      TopKJoinMISearch(*universe.base, {"K", "Y"}, index, 10, 1);
  ASSERT_TRUE(unsharded.ok());
  ASSERT_EQ(unsharded->hits.size(), 5u);

  for (size_t num_shards : {2u, 3u}) {
    const std::string dir = ScratchDir("dup_" + std::to_string(num_shards));
    auto manifest_path =
        BuildShards(index, num_shards, ShardPartitionPolicy::kRoundRobin, dir);
    ASSERT_TRUE(manifest_path.ok());
    // The duplicates really do straddle shards: no shard holds all four.
    auto sharded = ShardedSketchIndex::Load(*manifest_path);
    ASSERT_TRUE(sharded.ok());
    for (const ShardManifestEntry& entry : sharded->manifest().shards) {
      EXPECT_LT(entry.candidate_count, 4u);
    }
    for (size_t num_threads : {1u, 4u}) {
      auto via_shards = TopKJoinMISearch(*universe.base, {"K", "Y"},
                                         *sharded, 10, num_threads);
      ASSERT_TRUE(via_shards.ok());
      ExpectBitIdentical(*unsharded, *via_shards);
    }
    std::filesystem::remove_all(dir);
  }
}

TEST(ShardedSearchTest, EmptyShardsAreHarmless) {
  // 7 round-robin shards over 4 candidates leaves three shards empty; they
  // must load, answer with zero hits, and not disturb the merge.
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  ASSERT_EQ(index.size(), 4u);
  const std::string dir = ScratchDir("empty_shard");
  auto manifest_path =
      BuildShards(index, 7, ShardPartitionPolicy::kRoundRobin, dir);
  ASSERT_TRUE(manifest_path.ok());
  auto sharded = ShardedSketchIndex::Load(*manifest_path);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_EQ(sharded->num_shards(), 7u);
  size_t empty = 0;
  for (const ShardManifestEntry& entry : sharded->manifest().shards) {
    if (entry.candidate_count == 0) ++empty;
  }
  EXPECT_EQ(empty, 3u);
  auto unsharded = TopKJoinMISearch(*universe.base, {"K", "Y"}, index, 10, 1);
  auto via_shards =
      TopKJoinMISearch(*universe.base, {"K", "Y"}, *sharded, 10, 1);
  ASSERT_TRUE(unsharded.ok());
  ASSERT_TRUE(via_shards.ok());
  ExpectBitIdentical(*unsharded, *via_shards);
  std::filesystem::remove_all(dir);
}

TEST(ShardedSearchTest, HashByDatasetKeepsTablesTogether) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  // Every candidate of one table must map to the same shard regardless of
  // its enumeration index.
  for (size_t i = 0; i < index.size(); ++i) {
    const ColumnPairRef& ref = index.candidates()[i].ref;
    EXPECT_EQ(AssignShard(ShardPartitionPolicy::kHashByDataset, i, ref, 5),
              AssignShard(ShardPartitionPolicy::kHashByDataset, i + 17, ref, 5));
  }
  // Round-robin depends only on the enumeration index.
  EXPECT_EQ(AssignShard(ShardPartitionPolicy::kRoundRobin, 9,
                        {"anything", "K", "V"}, 4),
            1u);
}

TEST(ShardedSearchTest, RejectsZeroKAndZeroShards) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  auto built = BuildShards(index, 0, ShardPartitionPolicy::kRoundRobin,
                           ScratchDir("zero"));
  ASSERT_FALSE(built.ok());
  EXPECT_TRUE(built.status().IsInvalidArgument());

  const std::string dir = ScratchDir("zerok");
  auto manifest_path =
      BuildShards(index, 2, ShardPartitionPolicy::kRoundRobin, dir);
  ASSERT_TRUE(manifest_path.ok());
  auto sharded = ShardedSketchIndex::Load(*manifest_path);
  ASSERT_TRUE(sharded.ok());
  auto result = TopKJoinMISearch(*universe.base, {"K", "Y"}, *sharded, 0, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ Manifest format

TEST(ShardManifestTest, RoundTripsByteExactly) {
  ShardManifest manifest;
  manifest.policy = ShardPartitionPolicy::kHashByDataset;
  manifest.total_candidates = 5;
  manifest.shards.push_back(
      ShardManifestEntry{"shard_00000.jmix", 3, 0xDEADBEEFu, {0, 2, 4}});
  manifest.shards.push_back(
      ShardManifestEntry{"shard_00001.jmix", 2, 0xC0FFEEu, {1, 3}});
  ASSERT_TRUE(manifest.Validate().ok());
  const std::string data = SerializeManifest(manifest);
  auto restored = DeserializeManifest(data);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->policy, ShardPartitionPolicy::kHashByDataset);
  EXPECT_EQ(restored->total_candidates, 5u);
  ASSERT_EQ(restored->shards.size(), 2u);
  EXPECT_EQ(restored->shards[0].path, "shard_00000.jmix");
  EXPECT_EQ(restored->shards[1].checksum, 0xC0FFEEu);
  EXPECT_EQ(restored->shards[0].global_indices,
            (std::vector<uint64_t>{0, 2, 4}));
  EXPECT_EQ(SerializeManifest(*restored), data);
  EXPECT_FALSE(restored->config.has_value());
}

TEST(ShardManifestTest, RoundTripsEmbeddedConfig) {
  // v2's reason to exist: a router holding only the manifest can recover
  // the exact JoinMIConfig the shards were built under.
  ShardManifest manifest;
  manifest.total_candidates = 1;
  manifest.shards.push_back(ShardManifestEntry{"a.jmix", 1, 7, {0}});
  JoinMIConfig config;
  config.sketch_method = SketchMethod::kPrisk;
  config.sketch_capacity = 777;
  config.hash_seed = 13;
  config.sampling_seed = 99;
  config.aggregation = AggKind::kFirst;
  config.estimator = MIEstimatorKind::kDCKSG;
  config.mi_options.k = 5;
  config.min_join_size = 64;
  manifest.config = config;
  const std::string data = SerializeManifest(manifest);
  auto restored = DeserializeManifest(data);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_TRUE(restored->config.has_value());
  EXPECT_TRUE(*restored->config == config);
  EXPECT_EQ(SerializeManifest(*restored), data);
}

TEST(ShardManifestTest, ReadsLegacyV1Buffers) {
  // A hand-encoded v1 manifest (no config block) must still load, with
  // config absent.
  std::string data;
  wire::AppendRaw(&data, "JMIM", 4);
  wire::AppendPod<uint32_t>(&data, 1);  // legacy version
  wire::AppendPod<uint8_t>(&data, 0);   // round_robin
  wire::AppendPod<uint64_t>(&data, 1);  // one shard
  wire::AppendPod<uint64_t>(&data, 2);  // two candidates
  wire::AppendLengthPrefixed(&data, "shard_00000.jmix");
  wire::AppendPod<uint64_t>(&data, 2);       // candidate_count
  wire::AppendPod<uint64_t>(&data, 0xABCD);  // checksum
  wire::AppendPod<uint64_t>(&data, 0);
  wire::AppendPod<uint64_t>(&data, 1);
  auto restored = DeserializeManifest(data);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_FALSE(restored->config.has_value());
  EXPECT_EQ(restored->total_candidates, 2u);
  ASSERT_EQ(restored->shards.size(), 1u);
  EXPECT_EQ(restored->shards[0].checksum, 0xABCDu);
}

TEST(ShardManifestTest, BuildShardsEmbedsTheIndexConfig) {
  Universe universe = MakeUniverse();
  const JoinMIConfig config = MakeIndexConfig();
  SketchIndex index(config);
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string dir = ScratchDir("embed_config");
  auto manifest_path =
      BuildShards(index, 2, ShardPartitionPolicy::kRoundRobin, dir);
  ASSERT_TRUE(manifest_path.ok());
  auto manifest = ReadManifestFile(*manifest_path);
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(manifest->config.has_value());
  EXPECT_TRUE(*manifest->config == config);
  std::filesystem::remove_all(dir);
}

TEST(ShardManifestTest, ValidateCatchesStructuralLies) {
  ShardManifest manifest;
  manifest.total_candidates = 2;
  manifest.shards.push_back(ShardManifestEntry{"a.jmix", 1, 0, {0}});
  manifest.shards.push_back(ShardManifestEntry{"b.jmix", 1, 0, {1}});
  ASSERT_TRUE(manifest.Validate().ok());

  ShardManifest no_shards;
  EXPECT_TRUE(no_shards.Validate().IsInvalidArgument());

  ShardManifest count_lie = manifest;
  count_lie.shards[0].candidate_count = 2;  // indices list still has 1
  EXPECT_TRUE(count_lie.Validate().IsInvalidArgument());

  ShardManifest duplicate = manifest;
  duplicate.shards[1].global_indices = {0};  // 0 claimed twice
  EXPECT_TRUE(duplicate.Validate().IsInvalidArgument());

  ShardManifest out_of_range = manifest;
  out_of_range.shards[1].global_indices = {7};
  EXPECT_TRUE(out_of_range.Validate().IsInvalidArgument());

  ShardManifest not_increasing = manifest;
  not_increasing.shards[0].candidate_count = 2;
  not_increasing.shards[0].global_indices = {1, 0};
  not_increasing.shards[1].candidate_count = 0;
  not_increasing.shards[1].global_indices = {};
  EXPECT_TRUE(not_increasing.Validate().IsInvalidArgument());
}

TEST(ShardManifestTest, RejectsCorruptedBuffers) {
  ShardManifest manifest;
  manifest.total_candidates = 1;
  manifest.shards.push_back(ShardManifestEntry{"a.jmix", 1, 42, {0}});
  const std::string data = SerializeManifest(manifest);
  ASSERT_TRUE(DeserializeManifest(data).ok());

  std::string bad_magic = data;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DeserializeManifest(bad_magic).ok());

  std::string bad_version = data;
  bad_version[4] = 99;
  EXPECT_FALSE(DeserializeManifest(bad_version).ok());

  std::string bad_policy = data;
  bad_policy[8] = 9;  // after magic(4) + version(4)
  EXPECT_FALSE(DeserializeManifest(bad_policy).ok());

  for (size_t len = 0; len < data.size(); len += 3) {
    EXPECT_FALSE(DeserializeManifest(data.substr(0, len)).ok()) << len;
  }
  EXPECT_FALSE(DeserializeManifest(data + "x").ok());
}

// --------------------------------------------------- Corruption at load

struct ShardedFixture {
  std::string dir;
  std::string manifest_path;
  std::string shard0_path;
};

ShardedFixture BuildFixture(const std::string& name) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  index.IndexRepository(universe.repository).status().Abort();
  ShardedFixture fixture;
  fixture.dir = ScratchDir(name);
  auto manifest_path =
      BuildShards(index, 2, ShardPartitionPolicy::kRoundRobin, fixture.dir);
  manifest_path.status().Abort();
  fixture.manifest_path = *manifest_path;
  fixture.shard0_path = fixture.dir + "/shard_00000.jmix";
  return fixture;
}

std::string ReadAll(const std::string& path) {
  return *wire::ReadFileBytes(path);
}

void WriteAll(const std::string& path, const std::string& data) {
  wire::WriteFileBytes(data, path).Abort();
}

TEST(ShardedLoadCorruptionTest, TruncatedShardFileIsRejected) {
  ShardedFixture fixture = BuildFixture("truncated");
  const std::string bytes = ReadAll(fixture.shard0_path);
  WriteAll(fixture.shard0_path, bytes.substr(0, bytes.size() / 2));
  auto sharded = ShardedSketchIndex::Load(fixture.manifest_path);
  ASSERT_FALSE(sharded.ok());
  EXPECT_TRUE(sharded.status().IsInvalidArgument()) << sharded.status();
  EXPECT_NE(sharded.status().message().find("checksum"), std::string::npos)
      << sharded.status();
  std::filesystem::remove_all(fixture.dir);
}

TEST(ShardedLoadCorruptionTest, BitFlippedShardFileIsRejected) {
  ShardedFixture fixture = BuildFixture("bitflip");
  std::string bytes = ReadAll(fixture.shard0_path);
  // Flip a bit deep in the sketch payload — past every header the blob
  // parser checks, where only the manifest checksum can catch it.
  bytes[bytes.size() - 9] ^= 0x40;
  WriteAll(fixture.shard0_path, bytes);
  auto sharded = ShardedSketchIndex::Load(fixture.manifest_path);
  ASSERT_FALSE(sharded.ok());
  EXPECT_TRUE(sharded.status().IsInvalidArgument()) << sharded.status();
  EXPECT_NE(sharded.status().message().find("checksum"), std::string::npos);
  std::filesystem::remove_all(fixture.dir);
}

TEST(ShardedLoadCorruptionTest, SwappedShardFilesAreRejected) {
  // Both files are individually valid indexes; only the manifest checksum
  // knows they are in the wrong slots.
  ShardedFixture fixture = BuildFixture("swapped");
  const std::string shard1_path = fixture.dir + "/shard_00001.jmix";
  const std::string a = ReadAll(fixture.shard0_path);
  const std::string b = ReadAll(shard1_path);
  WriteAll(fixture.shard0_path, b);
  WriteAll(shard1_path, a);
  auto sharded = ShardedSketchIndex::Load(fixture.manifest_path);
  ASSERT_FALSE(sharded.ok());
  EXPECT_TRUE(sharded.status().IsInvalidArgument());
  std::filesystem::remove_all(fixture.dir);
}

TEST(ShardedLoadCorruptionTest, CandidateCountMismatchIsRejected) {
  // Tamper the manifest so it validates structurally but disagrees with the
  // shard file's actual candidate count: drop shard 1's last candidate and
  // shrink the total accordingly (the dropped index was the global max), and
  // re-point the checksum at the real file so only the count check can fire.
  ShardedFixture fixture = BuildFixture("count_mismatch");
  auto manifest = *ReadManifestFile(fixture.manifest_path);
  ShardManifestEntry& entry = manifest.shards[1];
  ASSERT_GE(entry.candidate_count, 1u);
  ASSERT_EQ(entry.global_indices.back(), manifest.total_candidates - 1);
  entry.global_indices.pop_back();
  entry.candidate_count -= 1;
  manifest.total_candidates -= 1;
  ASSERT_TRUE(manifest.Validate().ok());
  ASSERT_TRUE(WriteManifestFile(manifest, fixture.manifest_path).ok());

  auto sharded = ShardedSketchIndex::Load(fixture.manifest_path);
  ASSERT_FALSE(sharded.ok());
  EXPECT_TRUE(sharded.status().IsInvalidArgument()) << sharded.status();
  std::filesystem::remove_all(fixture.dir);
}

TEST(ShardedLoadCorruptionTest, MissingShardFileIsRejected) {
  ShardedFixture fixture = BuildFixture("missing");
  std::remove(fixture.shard0_path.c_str());
  EXPECT_FALSE(ShardedSketchIndex::Load(fixture.manifest_path).ok());
  std::filesystem::remove_all(fixture.dir);
}

// ----------------------------------------------- Client-level validation

TEST(LocalShardClientTest, RejectsInconsistentGlobalIndexMappings) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  SketchIndex copy = DeserializeIndex(SerializeIndex(index)).ValueOrDie();
  auto wrong_size = LocalShardClient::Create(std::move(copy), {0, 1});
  ASSERT_FALSE(wrong_size.ok());
  EXPECT_TRUE(wrong_size.status().IsInvalidArgument());

  SketchIndex copy2 = DeserializeIndex(SerializeIndex(index)).ValueOrDie();
  auto not_increasing =
      LocalShardClient::Create(std::move(copy2), {0, 2, 1, 3});
  ASSERT_FALSE(not_increasing.ok());
  EXPECT_TRUE(not_increasing.status().IsInvalidArgument());
}

TEST(ShardedSketchIndexTest, CreateRejectsConfigDisagreement) {
  // Two shards built under different hash seeds can never serve one query;
  // Create must refuse to assemble them.
  Universe universe = MakeUniverse();
  auto exact = *universe.repository.GetTable("exact");

  SketchIndex shard0(MakeIndexConfig());
  ASSERT_TRUE(shard0.AddCandidate(*exact, {"exact", "K", "V"}).ok());
  JoinMIConfig other = MakeIndexConfig();
  other.hash_seed = 99;
  SketchIndex shard1(other);
  ASSERT_TRUE(shard1.AddCandidate(*exact, {"exact", "K", "V"}).ok());

  ShardManifest manifest;
  manifest.total_candidates = 2;
  manifest.shards.push_back(ShardManifestEntry{"s0", 1, 0, {0}});
  manifest.shards.push_back(ShardManifestEntry{"s1", 1, 0, {1}});
  std::vector<std::unique_ptr<ShardClient>> clients;
  clients.push_back(
      LocalShardClient::Create(std::move(shard0), {0}).ValueOrDie());
  clients.push_back(
      LocalShardClient::Create(std::move(shard1), {1}).ValueOrDie());
  auto sharded =
      ShardedSketchIndex::Create(std::move(manifest), std::move(clients));
  ASSERT_FALSE(sharded.ok());
  EXPECT_TRUE(sharded.status().IsInvalidArgument());
  EXPECT_NE(sharded.status().message().find("JoinMIConfig"),
            std::string::npos);
}

TEST(ShardedSketchIndexTest, QueryWithMismatchedSeedFailsDeterministically) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string dir = ScratchDir("seed_mismatch");
  auto manifest_path =
      BuildShards(index, 3, ShardPartitionPolicy::kRoundRobin, dir);
  ASSERT_TRUE(manifest_path.ok());
  auto sharded = ShardedSketchIndex::Load(*manifest_path);
  ASSERT_TRUE(sharded.ok());
  JoinMIConfig other_seed = MakeIndexConfig();
  other_seed.hash_seed = 7;
  auto query = *JoinMIQuery::Create(*universe.base, "K", "Y", other_seed);
  for (size_t num_threads : {1u, 4u}) {
    auto result = sharded->Search(query, 10, num_threads);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInvalidArgument());
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardedSketchIndexTest, ZeroShardManifestsAreRejectedEverywhere) {
  // Regression: config() dereferences clients_[0], so nothing may ever
  // assemble a sharded index with zero shards. Every entry point —
  // Create, Load (via manifest validation), and BuildShards(0) — must
  // refuse with InvalidArgument.
  ShardManifest empty_manifest;
  auto created = ShardedSketchIndex::Create(empty_manifest, {});
  ASSERT_FALSE(created.ok());
  EXPECT_TRUE(created.status().IsInvalidArgument());

  // A zero-shard manifest cannot even be written for Load to find.
  EXPECT_TRUE(WriteManifestFile(empty_manifest, ScratchDir("zeroshard") +
                                                    "/manifest.jmim")
                  .IsInvalidArgument());

  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  auto built = BuildShards(index, 0, ShardPartitionPolicy::kRoundRobin,
                           ScratchDir("zeroshard_build"));
  ASSERT_FALSE(built.ok());
  EXPECT_TRUE(built.status().IsInvalidArgument());
}

namespace degraded_local {

/// A ShardClient that always fails Search — the local stand-in for a
/// crashed shard server, letting the degraded merge be tested without
/// sockets.
class FailingShardClient : public ShardClient {
 public:
  FailingShardClient(JoinMIConfig config, size_t num_candidates)
      : config_(std::move(config)), num_candidates_(num_candidates) {}
  const JoinMIConfig& config() const override { return config_; }
  size_t num_candidates() const override { return num_candidates_; }
  Result<ShardSearchResult> Search(const JoinMIQuery&, size_t,
                                   size_t) const override {
    return Status::IOError("simulated shard outage");
  }

 private:
  JoinMIConfig config_;
  size_t num_candidates_;
};

}  // namespace degraded_local

TEST(ShardedSketchIndexTest, DegradedModeMergesHealthyShardsOnly) {
  Universe universe = MakeUniverse();
  SketchIndex index(MakeIndexConfig());
  ASSERT_TRUE(index.IndexRepository(universe.repository).ok());
  const std::string dir = ScratchDir("degraded_local");
  auto manifest_path =
      BuildShards(index, 3, ShardPartitionPolicy::kRoundRobin, dir);
  ASSERT_TRUE(manifest_path.ok());
  auto manifest = ReadManifestFile(*manifest_path);
  ASSERT_TRUE(manifest.ok());

  // Assemble a router whose shard 1 always fails, shards 0/2 serve from
  // the real files.
  std::vector<std::unique_ptr<ShardClient>> clients;
  for (size_t s = 0; s < manifest->shards.size(); ++s) {
    if (s == 1) {
      clients.push_back(std::make_unique<degraded_local::FailingShardClient>(
          MakeIndexConfig(), manifest->shards[s].candidate_count));
    } else {
      auto client = ShardedSketchIndex::LocalFileFactory()(*manifest, s, dir);
      ASSERT_TRUE(client.ok()) << client.status();
      clients.push_back(std::move(*client));
    }
  }
  auto sharded =
      ShardedSketchIndex::Create(*manifest, std::move(clients));
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  auto query = JoinMIQuery::Create(*universe.base, "K", "Y",
                                   MakeIndexConfig());
  ASSERT_TRUE(query.ok());

  for (size_t num_threads : {1u, 4u}) {
    // Strict: the failure wins, named by shard.
    auto strict =
        sharded->Search(*query, 10, num_threads, ShardQueryMode::kStrict);
    ASSERT_FALSE(strict.ok());
    EXPECT_NE(strict.status().message().find("shard 1"), std::string::npos);

    // Degraded: hits cover shards 0 and 2 only; every hit's global index
    // belongs to a healthy shard, and the outage is recorded.
    auto degraded = sharded->Search(*query, 10, num_threads,
                                    ShardQueryMode::kDegraded);
    ASSERT_TRUE(degraded.ok()) << degraded.status();
    ASSERT_EQ(degraded->shard_failures.size(), 1u);
    EXPECT_EQ(degraded->shard_failures[0].shard, 1u);
    EXPECT_TRUE(degraded->shard_failures[0].status.IsIOError());
    EXPECT_EQ(degraded->num_candidates,
              index.size() - manifest->shards[1].candidate_count);
    for (const ShardSearchHit& hit : degraded->hits) {
      EXPECT_NE(hit.global_index % 3, 1u)
          << "hit from the dead round-robin shard leaked into the merge";
    }
    EXPECT_FALSE(degraded->hits.empty());
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardedSketchIndexTest, EmptyIndexShardsAndSearches) {
  SketchIndex index(MakeIndexConfig());
  const std::string dir = ScratchDir("empty_index");
  auto manifest_path =
      BuildShards(index, 3, ShardPartitionPolicy::kHashByDataset, dir);
  ASSERT_TRUE(manifest_path.ok()) << manifest_path.status();
  auto sharded = ShardedSketchIndex::Load(*manifest_path);
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_EQ(sharded->size(), 0u);
  Universe universe = MakeUniverse();
  auto result =
      TopKJoinMISearch(*universe.base, {"K", "Y"}, *sharded, 5, 1);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->hits.empty());
  EXPECT_EQ(result->num_candidates, 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace joinmi
