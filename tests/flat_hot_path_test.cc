// Tests for the flattened probe hot path: FlatProbeTable edge cases and
// randomized parity against std::unordered_map, Arena alignment / reset /
// oversized-allocation behavior, the FlatSketchIndex SoA arena, the
// prepared-join probe contract (unsorted/duplicated candidates fail with a
// structured error instead of a silently wrong join), and bit-identity of
// the batched SketchIndex::EvaluateAll against the per-candidate
// prepared-sketch path.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/arena.h"
#include "src/common/random.h"
#include "src/discovery/sketch_index.h"
#include "src/sketch/flat_index.h"
#include "src/sketch/flat_probe_table.h"
#include "src/sketch/sketch_join.h"
#include "src/table/table.h"

namespace joinmi {
namespace {

// ---------------------------------------------------------- FlatProbeTable

TEST(FlatProbeTableTest, EmptyTableFindsNothing) {
  FlatProbeTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(0), nullptr);
  EXPECT_EQ(table.Find(~uint64_t{0}), nullptr);
  EXPECT_EQ(table.Find(42), nullptr);
}

TEST(FlatProbeTableTest, SingleKeyRoundTrip) {
  FlatProbeTable table;
  ASSERT_TRUE(table.Insert(12345, 99));
  EXPECT_EQ(table.size(), 1u);
  const uint64_t* value = table.Find(12345);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 99u);
  EXPECT_EQ(table.Find(12346), nullptr);
}

TEST(FlatProbeTableTest, ZeroAndAllOnesAreLegalKeys) {
  // No sentinel key: 0 and ~0 must behave like any other key.
  FlatProbeTable table;
  ASSERT_TRUE(table.Insert(0, 1));
  ASSERT_TRUE(table.Insert(~uint64_t{0}, 2));
  ASSERT_NE(table.Find(0), nullptr);
  EXPECT_EQ(*table.Find(0), 1u);
  ASSERT_NE(table.Find(~uint64_t{0}), nullptr);
  EXPECT_EQ(*table.Find(~uint64_t{0}), 2u);
}

TEST(FlatProbeTableTest, DuplicateInsertReturnsFalseAndKeepsFirstValue) {
  FlatProbeTable table;
  ASSERT_TRUE(table.Insert(7, 100));
  EXPECT_FALSE(table.Insert(7, 200));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(*table.Find(7), 100u);
}

// Finds `count` distinct keys that all hash to the same bucket of a
// `buckets`-slot table, forcing the linear-probe chain.
std::vector<uint64_t> CollidingKeys(size_t buckets, size_t count) {
  unsigned shift = 64;
  for (size_t b = buckets; b > 1; b >>= 1) --shift;
  const size_t target = FlatProbeBucket(1, shift);
  std::vector<uint64_t> keys;
  for (uint64_t k = 1; keys.size() < count; ++k) {
    if (FlatProbeBucket(k, shift) == target) keys.push_back(k);
  }
  return keys;
}

TEST(FlatProbeTableTest, AllKeysCollidingInOneBucketStillResolve) {
  // Reserve enough that the 3 colliding keys never trigger growth, so the
  // probe chain is exercised rather than rehashed away.
  FlatProbeTable table(8);
  const size_t buckets = table.capacity();
  const std::vector<uint64_t> keys = CollidingKeys(buckets, 3);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(table.Insert(keys[i], i));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    const uint64_t* value = table.Find(keys[i]);
    ASSERT_NE(value, nullptr) << "key " << keys[i];
    EXPECT_EQ(*value, i);
  }
  // A key landing in the same (now full) bucket but never inserted must
  // walk the whole chain and still miss.
  const std::vector<uint64_t> more = CollidingKeys(buckets, 4);
  EXPECT_EQ(table.Find(more[3]), nullptr);
  // Duplicate rejection must survive the collision chain too.
  EXPECT_FALSE(table.Insert(keys[2], 777));
}

TEST(FlatProbeTableTest, RandomizedParityWithUnorderedMap) {
  Rng rng(40412);
  for (size_t trial = 0; trial < 8; ++trial) {
    FlatProbeTable table;  // default-sized: growth/rehash exercised
    std::unordered_map<uint64_t, uint64_t> reference;
    const size_t n = 1 + rng.NextBounded(2000);
    for (size_t i = 0; i < n; ++i) {
      // Narrow key range so duplicate inserts actually occur.
      const uint64_t key = rng.NextBounded(n * 2);
      const bool inserted = table.Insert(key, i);
      const bool ref_inserted = reference.emplace(key, i).second;
      ASSERT_EQ(inserted, ref_inserted) << "key " << key;
    }
    ASSERT_EQ(table.size(), reference.size());
    for (const auto& [key, value] : reference) {
      const uint64_t* found = table.Find(key);
      ASSERT_NE(found, nullptr) << "key " << key;
      EXPECT_EQ(*found, value);
    }
    for (size_t i = 0; i < 200; ++i) {
      const uint64_t probe = rng.Next64();
      const uint64_t* found = table.Find(probe);
      const auto it = reference.find(probe);
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
  }
}

TEST(FlatProbeTableTest, CapacityStaysPowerOfTwoAcrossGrowth) {
  FlatProbeTable table;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(table.Insert(i * 2654435761u, i));
    const size_t cap = table.capacity();
    ASSERT_NE(cap, 0u);
    ASSERT_EQ(cap & (cap - 1), 0u) << "not a power of two: " << cap;
    // Load factor invariant: size never exceeds 3/4 of the slots.
    ASSERT_LE(table.size() * 4, cap * 3);
  }
}

// ------------------------------------------------------------------ Arena

TEST(ArenaTest, RespectsAlignment) {
  Arena arena;
  // Interleave odd-sized and aligned requests so alignment padding is
  // actually needed.
  for (size_t i = 0; i < 64; ++i) {
    char* bytes = static_cast<char*>(arena.AllocateBytes(3, 1));
    bytes[0] = 'x';
    double* d = arena.AllocateArray<double>(2);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
    d[0] = 1.0;
    d[1] = 2.0;
    uint64_t* u = arena.AllocateArray<uint64_t>(1);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(u) % alignof(uint64_t), 0u);
    *u = i;
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(256);  // small blocks: force several block transitions
  std::vector<uint64_t*> slots;
  for (uint64_t i = 0; i < 500; ++i) {
    uint64_t* p = arena.AllocateArray<uint64_t>(1);
    *p = i;
    slots.push_back(p);
  }
  for (uint64_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(*slots[i], i);
  }
}

TEST(ArenaTest, ResetRetainsBlocksForSteadyStateReuse) {
  Arena arena(1024);
  for (size_t i = 0; i < 10; ++i) {
    arena.AllocateBytes(3000, 8);
    arena.AllocateBytes(512, 8);
  }
  const size_t reserved = arena.bytes_reserved();
  const size_t blocks = arena.num_blocks();
  ASSERT_GT(reserved, 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.num_blocks(), blocks);
  // The same allocation pattern after Reset must be served entirely from
  // retained blocks: no growth.
  for (size_t i = 0; i < 10; ++i) {
    arena.AllocateBytes(3000, 8);
    arena.AllocateBytes(512, 8);
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.num_blocks(), blocks);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  Arena arena(1024);
  const size_t huge = 1024 * 1024;
  char* p = static_cast<char*>(arena.AllocateBytes(huge, 8));
  ASSERT_NE(p, nullptr);
  p[0] = 'a';
  p[huge - 1] = 'z';
  EXPECT_GE(arena.bytes_reserved(), huge);
  // Small allocations still work after the oversized one, and the
  // oversized block is reusable after Reset.
  arena.AllocateBytes(64, 8);
  arena.Reset();
  char* again = static_cast<char*>(arena.AllocateBytes(huge, 8));
  ASSERT_NE(again, nullptr);
  again[huge - 1] = 'y';
  EXPECT_EQ(arena.num_blocks(), 2u);  // one standard + one dedicated
}

TEST(ArenaTest, ZeroByteAllocationIsValid) {
  Arena arena;
  void* p = arena.AllocateBytes(0, 1);
  EXPECT_NE(p, nullptr);
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena a(512);
  uint64_t* p = a.AllocateArray<uint64_t>(4);
  p[0] = 77;
  Arena b(std::move(a));
  EXPECT_EQ(p[0], 77u);  // block now owned by b, still alive
  EXPECT_GT(b.bytes_reserved(), 0u);
  Arena c(128);
  c = std::move(b);
  EXPECT_EQ(p[0], 77u);
}

// -------------------------------------------------------- FlatSketchIndex

Sketch MakeCandidateSketch(std::vector<std::pair<uint64_t, int64_t>> entries,
                           uint32_t seed = 0) {
  Sketch sketch;
  sketch.side = SketchSide::kCandidate;
  sketch.capacity = entries.size();
  sketch.hash_seed = seed;
  for (const auto& [key, value] : entries) {
    SketchEntry entry;
    entry.key_hash = key;
    entry.value = Value(value);
    sketch.entries.push_back(std::move(entry));
  }
  return sketch;
}

TEST(FlatSketchIndexTest, FindParityWithLinearScan) {
  Rng rng(90901);
  FlatSketchIndex flat;
  std::vector<Sketch> sketches;
  for (size_t c = 0; c < 20; ++c) {
    std::vector<std::pair<uint64_t, int64_t>> entries;
    uint64_t key = rng.NextBounded(50);
    const size_t len = rng.NextBounded(60);  // sometimes empty
    for (size_t i = 0; i < len; ++i) {
      key += 1 + rng.NextBounded(40);  // strictly ascending, gappy
      entries.push_back({key, static_cast<int64_t>(i)});
    }
    Sketch sketch = MakeCandidateSketch(std::move(entries));
    auto added = flat.AddCandidate(sketch);
    ASSERT_TRUE(added.ok());
    ASSERT_EQ(*added, c);
    sketches.push_back(std::move(sketch));
  }
  ASSERT_EQ(flat.num_candidates(), sketches.size());
  for (size_t c = 0; c < sketches.size(); ++c) {
    const Sketch& sketch = sketches[c];
    ASSERT_EQ(flat.extent(c).len, sketch.entries.size());
    for (size_t i = 0; i < sketch.entries.size(); ++i) {
      EXPECT_EQ(flat.Find(c, sketch.entries[i].key_hash),
                static_cast<int64_t>(i));
      EXPECT_EQ(flat.keys(c)[i], sketch.entries[i].key_hash);
      EXPECT_EQ(flat.values(c)[i], sketch.entries[i].value);
    }
    for (size_t probe = 0; probe < 100; ++probe) {
      const uint64_t key = rng.Next64();
      int64_t expected = -1;
      for (size_t i = 0; i < sketch.entries.size(); ++i) {
        if (sketch.entries[i].key_hash == key) {
          expected = static_cast<int64_t>(i);
          break;
        }
      }
      EXPECT_EQ(flat.Find(c, key), expected);
    }
  }
}

TEST(FlatSketchIndexTest, EmptyCandidateIsSafeToProbe) {
  FlatSketchIndex flat;
  auto added = flat.AddCandidate(MakeCandidateSketch({}));
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(flat.extent(0).len, 0u);
  EXPECT_EQ(flat.Find(0, 0), -1);
  EXPECT_EQ(flat.Find(0, 12345), -1);
}

TEST(FlatSketchIndexTest, RejectsDuplicateKeysWithoutMutation) {
  FlatSketchIndex flat;
  ASSERT_TRUE(flat.AddCandidate(MakeCandidateSketch({{1, 10}, {2, 20}})).ok());
  const size_t entries_before = flat.total_entries();
  const size_t slots_before = flat.total_probe_slots();
  auto bad = flat.AddCandidate(MakeCandidateSketch({{5, 1}, {5, 2}}));
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(flat.num_candidates(), 1u);
  EXPECT_EQ(flat.total_entries(), entries_before);
  EXPECT_EQ(flat.total_probe_slots(), slots_before);
}

TEST(FlatSketchIndexTest, RejectsTrainSideSketches) {
  FlatSketchIndex flat;
  Sketch train = MakeCandidateSketch({{1, 10}});
  train.side = SketchSide::kTrain;
  EXPECT_FALSE(flat.AddCandidate(train).ok());
}

// ------------------------------------------- prepared-join probe contract

Sketch MakeTrainSketch(std::vector<std::pair<uint64_t, int64_t>> entries,
                       uint32_t seed = 0) {
  Sketch sketch = MakeCandidateSketch(std::move(entries), seed);
  sketch.side = SketchSide::kTrain;
  return sketch;
}

TEST(ProbeContractTest, UnsortedCandidateEntriesFailStructurally) {
  auto prepared =
      PreparedTrainSketch::Create(MakeTrainSketch({{1, 1}, {2, 2}, {3, 3}}));
  ASSERT_TRUE(prepared.ok());
  // Keys present in the train sketch but out of order: previously this
  // produced a join whose outcome silently depended on probe order; now it
  // is a structured contract violation.
  Sketch unsorted = MakeCandidateSketch({{3, 30}, {1, 10}});
  auto joined = prepared->Join(unsorted);
  ASSERT_FALSE(joined.ok());
  EXPECT_TRUE(joined.status().IsInvalidArgument());
  EXPECT_NE(joined.status().message().find("not sorted"), std::string::npos)
      << joined.status().ToString();
}

TEST(ProbeContractTest, DuplicateCandidateKeysStillRejected) {
  auto prepared =
      PreparedTrainSketch::Create(MakeTrainSketch({{1, 1}, {2, 2}}));
  ASSERT_TRUE(prepared.ok());
  Sketch duplicated = MakeCandidateSketch({{2, 20}, {2, 21}});
  auto joined = prepared->Join(duplicated);
  ASSERT_FALSE(joined.ok());
  EXPECT_TRUE(joined.status().IsInvalidArgument());
  EXPECT_NE(joined.status().message().find("duplicate"), std::string::npos);
}

TEST(ProbeContractTest, SortedCandidateStillJoinsIdenticallyToJoinSketches) {
  Sketch train = MakeTrainSketch({{1, 5}, {1, 6}, {4, 7}, {9, 8}});
  Sketch candidate = MakeCandidateSketch({{1, 100}, {9, 900}, {12, 1200}});
  auto prepared = PreparedTrainSketch::Create(train);
  ASSERT_TRUE(prepared.ok());
  auto reference = JoinSketches(train, candidate);
  ASSERT_TRUE(reference.ok());
  auto fast = prepared->Join(candidate);
  ASSERT_TRUE(fast.ok());
  ASSERT_EQ(fast->join_size, reference->join_size);
  ASSERT_EQ(fast->matched_keys, reference->matched_keys);
  ASSERT_EQ(fast->sample.x.size(), reference->sample.x.size());
  for (size_t i = 0; i < fast->sample.size(); ++i) {
    EXPECT_EQ(fast->sample.x[i], reference->sample.x[i]) << i;
    EXPECT_EQ(fast->sample.y[i], reference->sample.y[i]) << i;
  }
}

// ------------------------------------- batched EvaluateAll bit-identity

std::shared_ptr<Table> MakeTwoColumnTable(const std::string& key_name,
                                          std::vector<std::string> keys,
                                          const std::string& value_name,
                                          std::vector<int64_t> values) {
  return *Table::FromColumns(
      {{key_name, Column::MakeString(std::move(keys))},
       {value_name, Column::MakeInt64(std::move(values))}});
}

TEST(BatchedEvaluateAllTest, MatchesPerCandidatePreparedPathBitExactly) {
  Rng rng(5150);
  const size_t num_keys = 200;
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  for (size_t i = 0; i < num_keys; ++i) {
    keys.push_back("k" + std::to_string(i));
    targets.push_back(static_cast<int64_t>(i % 9));
  }
  auto base = MakeTwoColumnTable("K", keys, "Y", targets);

  JoinMIConfig config;
  config.sketch_capacity = 128;
  config.min_join_size = 16;
  SketchIndex index(config);
  TableRepository repository;
  for (size_t t = 0; t < 12; ++t) {
    // Graded relevance plus partial key overlap so the index mixes real
    // hits, noise, and below-cutoff candidates.
    std::vector<std::string> cand_keys;
    std::vector<int64_t> cand_values;
    const size_t start = t * 10;
    for (size_t i = start; i < num_keys; ++i) {
      cand_keys.push_back("k" + std::to_string(i));
      cand_values.push_back(t % 3 == 0
                                ? static_cast<int64_t>(i % 9)
                                : static_cast<int64_t>(rng.NextBounded(9)));
    }
    repository
        .AddTable("t" + std::to_string(t),
                  MakeTwoColumnTable("K", std::move(cand_keys), "V",
                                     std::move(cand_values)))
        .Abort();
  }
  ASSERT_TRUE(index.IndexRepository(repository).ok());
  ASSERT_EQ(index.size(), 12u);

  auto query = *JoinMIQuery::Create(*base, "K", "Y", config);
  for (size_t num_threads : {1u, 2u, 4u}) {
    auto evaluation = index.EvaluateAll(query, num_threads);
    ASSERT_TRUE(evaluation.ok());
    ASSERT_EQ(evaluation->estimates.size(), index.size());
    size_t evaluated = 0;
    size_t skipped = 0;
    for (size_t c = 0; c < index.size(); ++c) {
      // Ground truth: the per-candidate prepared path the batched strip
      // replaced. Estimates must agree bit-for-bit, not approximately.
      auto reference = query.Estimate(index.candidates()[c].prepared);
      if (reference.ok()) {
        ++evaluated;
        ASSERT_TRUE(evaluation->estimates[c].has_value()) << c;
        EXPECT_EQ(evaluation->estimates[c]->mi, reference->mi) << c;
        EXPECT_EQ(evaluation->estimates[c]->sample_size,
                  reference->sample_size)
            << c;
        EXPECT_EQ(evaluation->estimates[c]->estimator, reference->estimator)
            << c;
        EXPECT_TRUE(evaluation->estimates[c]->sketched) << c;
      } else {
        ASSERT_TRUE(reference.status().IsOutOfRange()) << c;
        ++skipped;
        EXPECT_FALSE(evaluation->estimates[c].has_value()) << c;
      }
    }
    EXPECT_EQ(evaluation->num_evaluated, evaluated);
    EXPECT_EQ(evaluation->num_skipped, skipped);
    EXPECT_EQ(evaluation->num_errors, 0u);
  }
}

}  // namespace
}  // namespace joinmi
