// shard_server: serve one shard of a partitioned sketch index over JMRP.
//
//   shard_server <deployment> <shard_id> <port> [--host ADDR]
//                [--workers N] [--eval-threads N] [--port-file PATH]
//                [--paged] [--pool-pages N] [--max-pending N]
//                [--stats-json PATH]
//
// <deployment> is a manifest file, a CURRENT pointer file, or a
// deployment directory (resolved to the published generation). Loads
// shard <shard_id> named by the resolved manifest (checksum- and
// count-verified before serving), binds <port> (0 = ephemeral), prints
// one "listening on HOST:PORT" line, and serves until SIGINT/SIGTERM.
// A kReloadRequest frame (see ingest_ctl --notify) makes the server
// re-resolve the deployment and swap in the newest generation without
// dropping a connection; in-flight queries finish on the old one.
// --port-file writes the bound port (digits + newline) once the listener
// is up — the startup barrier scripts wait on, and the way ephemeral
// ports are discovered.
//
// --paged requires the manifest to record the shard as a "JMPS" paged
// file and serves it through a bounded buffer pool of --pool-pages pages:
// startup reads only the file's header + record directory (a second
// startup line reports exactly how many bytes, so logs prove the shard
// was never materialized whole) and the shutdown stats line gains the
// pool's hit/miss/eviction counters. A paged shard also serves fine
// without --paged — the flag is the operator's assertion, not a mode
// switch.
//
// --max-pending N bounds search frames concurrently queued or executing;
// excess frames are rejected with a structured kOverloaded status carrying
// a retry_after_ms hint (see src/common/admission.h). --stats-json PATH
// writes the server's full metrics snapshot (the same JSON served over the
// JMRP stats frame) to PATH at shutdown — the machine-readable replacement
// for scraping the stderr stats lines, which still print.

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/discovery/shard_server.h"
#include "src/sketch/serialize.h"

using namespace joinmi;

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <deployment> <shard_id> <port> [--host ADDR] "
               "[--workers N] [--eval-threads N] [--port-file PATH] "
               "[--paged] [--pool-pages N] [--max-pending N] "
               "[--stats-json PATH]\n"
               "  deployment  : manifest file, CURRENT pointer, or "
               "deployment dir\n"
               "  shard_id    : 0-based index into the manifest's shard list\n"
               "  port        : TCP port to bind; 0 picks an ephemeral port\n"
               "  --paged     : require a paged (JMPS) shard; startup reads\n"
               "                header + directory only\n"
               "  --pool-pages: buffer-pool budget in pages for paged "
               "shards\n"
               "  --max-pending: search frames queued+executing before new\n"
               "                ones are rejected kOverloaded (0 = "
               "unbounded)\n"
               "  --stats-json: write the metrics snapshot JSON here at "
               "shutdown\n",
               argv0);
  return 2;
}

// Strict integer parse: whole string, no sign surprises, range-checked.
bool ParseSizeArg(const char* arg, long min, long max, long* out) {
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(arg, &end, 10);
  if (errno != 0 || end == arg || *end != '\0' || parsed < min ||
      parsed > max) {
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);

  const std::string manifest_path = argv[1];
  long shard_id = 0;
  if (!ParseSizeArg(argv[2], 0, 1000000, &shard_id)) {
    std::fprintf(stderr, "shard_id '%s' must be a non-negative integer\n",
                 argv[2]);
    return Usage(argv[0]);
  }
  long port = 0;
  if (!ParseSizeArg(argv[3], 0, 65535, &port)) {
    std::fprintf(stderr, "port '%s' must be an integer in [0, 65535]\n",
                 argv[3]);
    return Usage(argv[0]);
  }

  ShardServerOptions options;
  std::string port_file;
  std::string stats_json_path;
  for (int arg = 4; arg < argc; ++arg) {
    const bool has_value = arg + 1 < argc;
    if (std::strcmp(argv[arg], "--host") == 0 && has_value) {
      options.host = argv[++arg];
    } else if (std::strcmp(argv[arg], "--workers") == 0 && has_value) {
      long workers = 0;
      if (!ParseSizeArg(argv[++arg], 1, 1024, &workers)) {
        std::fprintf(stderr, "--workers must be an integer in [1, 1024]\n");
        return Usage(argv[0]);
      }
      options.num_workers = static_cast<size_t>(workers);
    } else if (std::strcmp(argv[arg], "--eval-threads") == 0 && has_value) {
      long threads = 0;
      if (!ParseSizeArg(argv[++arg], 1, 256, &threads)) {
        std::fprintf(stderr,
                     "--eval-threads must be an integer in [1, 256]\n");
        return Usage(argv[0]);
      }
      options.eval_threads = static_cast<size_t>(threads);
    } else if (std::strcmp(argv[arg], "--port-file") == 0 && has_value) {
      port_file = argv[++arg];
    } else if (std::strcmp(argv[arg], "--paged") == 0) {
      options.require_paged = true;
    } else if (std::strcmp(argv[arg], "--pool-pages") == 0 && has_value) {
      long pool_pages = 0;
      if (!ParseSizeArg(argv[++arg], 1, 1L << 30, &pool_pages)) {
        std::fprintf(stderr, "--pool-pages must be a positive integer\n");
        return Usage(argv[0]);
      }
      options.pool_pages = static_cast<size_t>(pool_pages);
    } else if (std::strcmp(argv[arg], "--max-pending") == 0 && has_value) {
      long max_pending = 0;
      if (!ParseSizeArg(argv[++arg], 0, 1L << 30, &max_pending)) {
        std::fprintf(stderr,
                     "--max-pending must be a non-negative integer\n");
        return Usage(argv[0]);
      }
      options.max_pending = static_cast<size_t>(max_pending);
    } else if (std::strcmp(argv[arg], "--stats-json") == 0 && has_value) {
      stats_json_path = argv[++arg];
    } else {
      std::fprintf(stderr, "unknown or incomplete flag '%s'\n", argv[arg]);
      return Usage(argv[0]);
    }
  }
  options.port = static_cast<uint16_t>(port);

  auto server =
      ShardServer::Create(manifest_path, static_cast<size_t>(shard_id),
                          options);
  if (!server.ok()) {
    std::fprintf(stderr, "failed to load shard %ld from %s: %s\n", shard_id,
                 manifest_path.c_str(),
                 server.status().ToString().c_str());
    return 1;
  }
  Status started = (*server)->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "failed to start shard server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("shard %ld listening on %s:%u (%zu candidates, %zu workers, "
              "%zu eval threads)\n",
              shard_id, (*server)->host().c_str(), (*server)->port(),
              (*server)->num_candidates(), options.num_workers,
              options.eval_threads);
  if ((*server)->serving_paged()) {
    // The no-materialization receipt: CI greps this line and asserts the
    // startup read is a small fraction of the shard file.
    const auto open_stats = (*server)->paged_open_stats();
    std::printf("shard %ld paged: startup read %llu of %llu bytes "
                "(header+directory only), pool %zu pages\n",
                shard_id,
                static_cast<unsigned long long>(open_stats.startup_bytes_read),
                static_cast<unsigned long long>(open_stats.file_size),
                (*server)->pool_capacity());
  }
  std::fflush(stdout);
  if (!port_file.empty()) {
    const Status written = wire::WriteFileBytes(
        std::to_string((*server)->port()) + "\n", port_file);
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write port file: %s\n",
                   written.ToString().c_str());
      return 1;
    }
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // Shutdown stats go to stderr (stdout may be a pipe a supervisor already
  // stopped reading): searches are query traffic only (single and batch
  // frames — handshakes and health probes no longer inflate the count),
  // handshakes count distinct client connections, so a failover drill's
  // logs show whether this replica actually took traffic.
  std::fprintf(stderr,
               "shard %ld shutting down: %llu searches served "
               "(%llu handshakes, %llu health probes, %llu uploads)\n",
               shard_id,
               static_cast<unsigned long long>((*server)->requests_served()),
               static_cast<unsigned long long>(
                   (*server)->handshakes_served()),
               static_cast<unsigned long long>((*server)->health_served()),
               static_cast<unsigned long long>(
                   (*server)->sketch_uploads_served()));
  if ((*server)->serving_paged()) {
    const auto pool = (*server)->pool_stats();
    std::fprintf(stderr,
                 "shard %ld pool: %llu hits, %llu misses, %llu evictions\n",
                 shard_id, static_cast<unsigned long long>(pool.hits),
                 static_cast<unsigned long long>(pool.misses),
                 static_cast<unsigned long long>(pool.evictions));
  }
  if (!stats_json_path.empty()) {
    // The machine-readable shutdown receipt: everything the stderr lines
    // say and more, in the registry's snapshot schema.
    const Status written =
        wire::WriteFileBytes((*server)->StatsJson() + "\n", stats_json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write stats JSON: %s\n",
                   written.ToString().c_str());
    }
  }
  (*server)->Stop();
  return 0;
}
