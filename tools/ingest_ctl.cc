// ingest_ctl: operate the online-ingest write path of a mutable
// deployment directory (see src/ingest/).
//
//   ingest_ctl append  <deployment_dir> <index.jmix> [--from N]
//   ingest_ctl publish <deployment_dir> [--notify endpoints.txt]
//   ingest_ctl compact <deployment_dir> [--notify endpoints.txt]
//   ingest_ctl status  <deployment_dir> [--json]
//
// append: durably commits candidates of <index.jmix> into the
// deployment's per-shard delta segments, starting at candidate --from
// (default: the deployment's next global insertion index, so pointing at
// a superset index "catches the deployment up" to it and re-running is a
// no-op). Appended records survive a crash but are NOT served until
// publish.
//
// publish: pins every committed delta record into manifest generation
// epoch+1 and atomically flips the CURRENT pointer. --notify sends each
// server in the endpoints file a kReloadRequest so it swaps the new
// generation in without restarting; in-flight queries finish on the old
// epoch. A notify failure does not roll back the publish (CURRENT
// already names the new generation — re-notify or let the next reload
// pick it up) but does exit nonzero.
//
// compact: folds every committed delta record into fresh base shard
// files (byte-identical to a from-scratch build of the same candidates),
// verifies them, and publishes the compacted, delta-free manifest as
// epoch+1. Same --notify semantics as publish.
//
// status: epoch, published/pending candidate counts, and per-shard delta
// occupancy; --json prints one machine-readable document instead.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/discovery/paged_shard_index.h"
#include "src/discovery/replica_router.h"
#include "src/discovery/rpc_messages.h"
#include "src/discovery/sketch_index.h"
#include "src/ingest/coordinator.h"
#include "src/net/frame.h"
#include "src/net/socket.h"

using namespace joinmi;

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s append  <deployment_dir> <index.jmix> [--from N]\n"
      "       %s publish <deployment_dir> [--notify endpoints.txt]\n"
      "       %s compact <deployment_dir> [--notify endpoints.txt]\n"
      "       %s status  <deployment_dir> [--json]\n"
      "  append  : durably commit candidates [N, end) of the index into\n"
      "            the deployment's delta segments (default N = next\n"
      "            global insertion index; served only after publish)\n"
      "  publish : pin committed deltas into manifest epoch+1 and flip\n"
      "            CURRENT atomically\n"
      "  compact : fold deltas into fresh base shards, then publish\n"
      "  status  : epoch + published/pending counts (+ per-shard deltas)\n"
      "  --notify: send kReloadRequest to every server in the endpoints\n"
      "            file after the flip (exit nonzero if any failed)\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

// Strict integer parse: whole string, no sign surprises, range-checked.
bool ParseSizeArg(const char* arg, long min, long max, long* out) {
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(arg, &end, 10);
  if (errno != 0 || end == arg || *end != '\0' || parsed < min ||
      parsed > max) {
    return false;
  }
  *out = parsed;
  return true;
}

// Tells one server to re-resolve its deployment and swap in the newest
// generation. Deliberately a raw frame exchange, not an RpcShardClient:
// the client's handshake verifies candidate counts against a manifest,
// and the whole point here is that the server is about to DISAGREE with
// the manifest it was started from.
Status NotifyOne(const ShardEndpoint& endpoint, uint64_t* epoch,
                 uint64_t* candidates) {
  JOINMI_ASSIGN_OR_RETURN(net::Socket socket,
                          net::Socket::Connect(endpoint.host, endpoint.port,
                                               /*timeout_ms=*/5000));
  JOINMI_RETURN_NOT_OK(socket.SetTimeouts(30000, 30000));
  JOINMI_RETURN_NOT_OK(net::SendFrameV2(
      &socket, net::FrameType::kReloadRequest, /*request_id=*/1, ""));
  JOINMI_ASSIGN_OR_RETURN(net::Frame frame, net::RecvFrame(&socket));
  if (frame.type == net::FrameType::kError) {
    Status server_error;
    JOINMI_RETURN_NOT_OK(
        rpc::DecodeErrorPayload(frame.payload, &server_error));
    return server_error;
  }
  if (frame.type != net::FrameType::kReloadResponse) {
    return Status::IOError(
        "server answered the reload request with a " +
        std::string(net::FrameTypeToString(frame.type)) + " frame");
  }
  JOINMI_ASSIGN_OR_RETURN(rpc::ReloadResponse response,
                          rpc::DecodeReloadResponse(frame.payload));
  JOINMI_RETURN_NOT_OK(response.status);
  *epoch = response.epoch;
  *candidates = response.num_candidates;
  return Status::OK();
}

// Reloads every endpoint in the file; reports every failure (not just
// the first) and returns the failure count.
int NotifyAll(const std::string& endpoints_path, uint64_t expect_epoch) {
  auto replicas = ReadShardEndpoints(endpoints_path);
  if (!replicas.ok()) {
    std::fprintf(stderr, "failed reading endpoints: %s\n",
                 replicas.status().ToString().c_str());
    return 1;
  }
  int failures = 0;
  for (size_t shard = 0; shard < replicas->size(); ++shard) {
    for (const ShardEndpoint& endpoint : (*replicas)[shard]) {
      uint64_t epoch = 0;
      uint64_t candidates = 0;
      const Status notified = NotifyOne(endpoint, &epoch, &candidates);
      if (!notified.ok()) {
        ++failures;
        std::fprintf(stderr, "notify %s (shard %zu): FAILED: %s\n",
                     endpoint.ToString().c_str(), shard,
                     notified.ToString().c_str());
        continue;
      }
      std::printf("notify %s (shard %zu): epoch %llu, %llu candidates\n",
                  endpoint.ToString().c_str(), shard,
                  static_cast<unsigned long long>(epoch),
                  static_cast<unsigned long long>(candidates));
      if (epoch != expect_epoch) {
        ++failures;
        std::fprintf(stderr,
                     "notify %s (shard %zu): serving epoch %llu, expected "
                     "%llu — did another publish race this one?\n",
                     endpoint.ToString().c_str(), shard,
                     static_cast<unsigned long long>(epoch),
                     static_cast<unsigned long long>(expect_epoch));
      }
    }
  }
  return failures;
}

int RunAppend(int argc, char** argv) {
  if (argc < 4) return Usage(argv[0]);
  const std::string dir = argv[2];
  const std::string index_path = argv[3];
  long from = -1;
  for (int arg = 4; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--from") == 0 && arg + 1 < argc) {
      if (!ParseSizeArg(argv[++arg], 0, 1L << 62, &from)) {
        std::fprintf(stderr, "--from must be a non-negative integer\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown or incomplete flag '%s'\n", argv[arg]);
      return Usage(argv[0]);
    }
  }

  auto coordinator = ingest::IngestCoordinator::Open(dir);
  if (!coordinator.ok()) {
    std::fprintf(stderr, "failed opening the deployment: %s\n",
                 coordinator.status().ToString().c_str());
    return 1;
  }
  auto index = ReadIndexFile(index_path);
  if (!index.ok()) {
    std::fprintf(stderr, "failed reading the source index: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  const uint64_t start =
      from >= 0 ? static_cast<uint64_t>(from)
                : (*coordinator)->next_global_index();
  if (start > index->size()) {
    std::fprintf(stderr,
                 "append start %llu is past the index's %zu candidates\n",
                 static_cast<unsigned long long>(start), index->size());
    return 1;
  }
  std::vector<CandidateRecord> batch;
  batch.reserve(index->size() - static_cast<size_t>(start));
  for (size_t i = static_cast<size_t>(start); i < index->size(); ++i) {
    const IndexedCandidate& candidate = index->candidates()[i];
    batch.push_back(CandidateRecord{candidate.ref, candidate.sketch()});
  }
  if (batch.empty()) {
    std::printf("nothing to append: the deployment already holds %llu "
                "candidates\n",
                static_cast<unsigned long long>(
                    (*coordinator)->next_global_index()));
    return 0;
  }
  const Status appended = (*coordinator)->Append(batch);
  if (!appended.ok()) {
    std::fprintf(stderr, "append failed: %s\n",
                 appended.ToString().c_str());
    return 1;
  }
  std::printf("appended %zu candidates (globals %llu..%llu) — committed, "
              "pending publish (%llu pending total)\n",
              batch.size(), static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(
                  (*coordinator)->next_global_index() - 1),
              static_cast<unsigned long long>(
                  (*coordinator)->pending_candidates()));
  return 0;
}

int RunPublishOrCompact(int argc, char** argv, bool compact) {
  if (argc < 3) return Usage(argv[0]);
  const std::string dir = argv[2];
  std::string endpoints_path;
  for (int arg = 3; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--notify") == 0 && arg + 1 < argc) {
      endpoints_path = argv[++arg];
    } else {
      std::fprintf(stderr, "unknown or incomplete flag '%s'\n", argv[arg]);
      return Usage(argv[0]);
    }
  }
  auto coordinator = ingest::IngestCoordinator::Open(dir);
  if (!coordinator.ok()) {
    std::fprintf(stderr, "failed opening the deployment: %s\n",
                 coordinator.status().ToString().c_str());
    return 1;
  }
  const uint64_t pending = (*coordinator)->pending_candidates();
  auto epoch = compact ? (*coordinator)->Compact()
                       : (*coordinator)->Publish();
  if (!epoch.ok()) {
    std::fprintf(stderr, "%s failed: %s\n",
                 compact ? "compact" : "publish",
                 epoch.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: epoch %llu now CURRENT (%llu candidates, %llu newly "
              "published)\n",
              compact ? "compacted" : "published",
              static_cast<unsigned long long>(*epoch),
              static_cast<unsigned long long>(
                  (*coordinator)->published_candidates()),
              static_cast<unsigned long long>(pending));
  if (!endpoints_path.empty()) {
    const int failures = NotifyAll(endpoints_path, *epoch);
    if (failures > 0) {
      std::fprintf(stderr,
                   "%d notify failure(s); CURRENT already names epoch "
                   "%llu — re-notify when the servers are reachable\n",
                   failures, static_cast<unsigned long long>(*epoch));
      return 1;
    }
  }
  return 0;
}

int RunStatus(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);
  const std::string dir = argv[2];
  bool json = false;
  for (int arg = 3; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--json") == 0) {
      json = true;
    } else {
      std::fprintf(stderr, "unknown or incomplete flag '%s'\n", argv[arg]);
      return Usage(argv[0]);
    }
  }
  auto coordinator = ingest::IngestCoordinator::Open(dir);
  if (!coordinator.ok()) {
    std::fprintf(stderr, "failed opening the deployment: %s\n",
                 coordinator.status().ToString().c_str());
    return 1;
  }
  const ShardManifest& manifest = (*coordinator)->manifest();
  if (json) {
    std::string out = "{";
    out += "\"epoch\": " + std::to_string((*coordinator)->epoch());
    out += ", \"manifest\": \"" + (*coordinator)->manifest_path() + "\"";
    out += ", \"published_candidates\": " +
           std::to_string((*coordinator)->published_candidates());
    out += ", \"pending_candidates\": " +
           std::to_string((*coordinator)->pending_candidates());
    out += ", \"shards\": [";
    for (size_t s = 0; s < manifest.shards.size(); ++s) {
      const ShardManifestEntry& entry = manifest.shards[s];
      if (s > 0) out += ", ";
      out += "{\"path\": \"" + entry.path + "\"";
      out += ", \"candidates\": " + std::to_string(entry.candidate_count);
      out += ", \"delta_records\": " + std::to_string(entry.delta_records);
      out += "}";
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return 0;
  }
  std::printf("deployment   : %s\n", dir.c_str());
  std::printf("manifest     : %s (epoch %llu)\n",
              (*coordinator)->manifest_path().c_str(),
              static_cast<unsigned long long>((*coordinator)->epoch()));
  std::printf("published    : %llu candidates\n",
              static_cast<unsigned long long>(
                  (*coordinator)->published_candidates()));
  std::printf("pending      : %llu candidates (committed, unpublished)\n",
              static_cast<unsigned long long>(
                  (*coordinator)->pending_candidates()));
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    const ShardManifestEntry& entry = manifest.shards[s];
    const std::string delta_note =
        entry.has_delta() ? "  (" + entry.delta_path + ")" : "";
    std::printf("  shard %-4zu : %s  %6llu candidates  %llu in delta%s\n",
                s, entry.path.c_str(),
                static_cast<unsigned long long>(entry.candidate_count),
                static_cast<unsigned long long>(entry.delta_records),
                delta_note.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  if (std::strcmp(argv[1], "append") == 0) return RunAppend(argc, argv);
  if (std::strcmp(argv[1], "publish") == 0) {
    return RunPublishOrCompact(argc, argv, /*compact=*/false);
  }
  if (std::strcmp(argv[1], "compact") == 0) {
    return RunPublishOrCompact(argc, argv, /*compact=*/true);
  }
  if (std::strcmp(argv[1], "status") == 0) return RunStatus(argc, argv);
  std::fprintf(stderr, "unknown verb '%s'\n", argv[1]);
  return Usage(argv[0]);
}
