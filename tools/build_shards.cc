// build_shards: partition a persisted sketch index into shard index files
// plus a versioned shard manifest — the offline half of the sharded
// discovery deployment (shard files go to shard servers, the manifest to
// the query router).
//
//   build_shards <index.jmix> <output_dir> <num_shards> <round_robin|hash_dataset>
//
// After writing, the tool reloads everything through the manifest
// (ShardedSketchIndex::Load), which re-verifies every shard file's checksum
// and candidate count, and prints the per-shard layout. Exits nonzero if
// any step fails or the reloaded totals disagree with the source index.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"

using namespace joinmi;

int main(int argc, char** argv) {
  if (argc != 5) {
    std::fprintf(stderr,
                 "usage: %s <index.jmix> <output_dir> <num_shards> "
                 "<round_robin|hash_dataset>\n",
                 argv[0]);
    return 2;
  }
  const std::string index_path = argv[1];
  const std::string output_dir = argv[2];
  char* end = nullptr;
  const long shards_arg = std::strtol(argv[3], &end, 10);
  if (end == argv[3] || *end != '\0' || shards_arg < 1 ||
      shards_arg > 100000) {
    std::fprintf(stderr, "num_shards must be an integer in [1, 100000]\n");
    return 2;
  }
  const size_t num_shards = static_cast<size_t>(shards_arg);
  auto policy = ParseShardPartitionPolicy(argv[4]);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 2;
  }

  auto index = ReadIndexFile(index_path);
  if (!index.ok()) {
    std::fprintf(stderr, "failed reading the source index: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("source index : %s (%zu candidates, config %s)\n",
              index_path.c_str(), index->size(),
              index->config().ToString().c_str());

  auto manifest_path =
      BuildShards(*index, num_shards, *policy, output_dir);
  if (!manifest_path.ok()) {
    std::fprintf(stderr, "failed partitioning the index: %s\n",
                 manifest_path.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote        : %s (%zu shards, policy %s)\n",
              manifest_path->c_str(), num_shards,
              ShardPartitionPolicyToString(*policy));

  // Round trip: loading re-verifies manifest structure, per-shard
  // checksums, and candidate counts against what was just written.
  auto sharded = ShardedSketchIndex::Load(*manifest_path);
  if (!sharded.ok()) {
    std::fprintf(stderr, "failed reloading the sharded index: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  for (size_t s = 0; s < sharded->manifest().shards.size(); ++s) {
    const ShardManifestEntry& entry = sharded->manifest().shards[s];
    std::printf("  shard %-4zu : %s  %6llu candidates  checksum %016llx\n",
                s, entry.path.c_str(),
                static_cast<unsigned long long>(entry.candidate_count),
                static_cast<unsigned long long>(entry.checksum));
  }
  if (sharded->size() != index->size() ||
      sharded->num_shards() != num_shards) {
    std::fprintf(stderr,
                 "FATAL: reloaded sharded index totals disagree with the "
                 "source (%zu/%zu candidates, %zu/%zu shards)\n",
                 sharded->size(), index->size(), sharded->num_shards(),
                 num_shards);
    return 1;
  }
  std::printf("verified     : manifest round trip OK — %zu candidates "
              "across %zu shards\n",
              sharded->size(), sharded->num_shards());
  return 0;
}
