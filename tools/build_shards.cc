// build_shards: partition a persisted sketch index into shard files plus
// a versioned shard manifest — the offline half of the sharded discovery
// deployment (shard files go to shard servers, the manifest to the query
// router) — and verify paged shard files page by page.
//
//   build_shards <index.jmix> <output_dir> <num_shards>
//                <round_robin|hash_dataset> [--format whole|paged]
//                [--page-size N]
//   build_shards verify <file> [<file> ...]
//
// Build: after writing, the tool reloads everything through the manifest
// (ShardedSketchIndex::Load), which re-verifies whole-file shards'
// checksums and candidate counts (paged shards re-open by header +
// directory), and prints the per-shard layout. Exits nonzero if any step
// fails or the reloaded totals disagree with the source index.
//
// Verify: checks every file named, dispatching on extension — .jmps walks
// every page (index + payload checksum) and replays the record directory;
// .jmix re-parses the whole-file index; .jmds re-parses the delta segment
// and requires a clean committed tail; .jmim re-parses the manifest. ALL
// files are walked and every failure reported (an audit wants the full
// damage list, not the first hit); exits nonzero if any file failed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/ingest/delta_segment.h"
#include "src/sketch/serialize.h"
#include "src/storage/paged_shard_file.h"

using namespace joinmi;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <index.jmix> <output_dir> <num_shards> "
               "<round_robin|hash_dataset> [--format whole|paged] "
               "[--page-size N]\n"
               "       %s verify <file> [<file> ...]\n"
               "  --format    : shard file layout (default whole); paged\n"
               "                shards serve through a buffer pool without\n"
               "                full materialization\n"
               "  --page-size : page size in bytes for paged shards "
               "(default 4096)\n"
               "  verify      : checks .jmps/.jmix/.jmds/.jmim files by\n"
               "                extension; walks all files, reports every\n"
               "                failure, exits nonzero if any failed\n",
               argv0, argv0);
  return 2;
}

// Strict integer parse: whole string, no sign surprises, range-checked.
bool ParseSizeArg(const char* arg, long min, long max, long* out) {
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(arg, &end, 10);
  if (errno != 0 || end == arg || *end != '\0' || parsed < min ||
      parsed > max) {
    return false;
  }
  *out = parsed;
  return true;
}

// Extension-dispatched check of one deployment file. Returns OK when the
// file is intact; the message names what was checked.
Status VerifyOneFile(const std::string& path, std::string* what) {
  const size_t dot = path.rfind('.');
  const std::string ext =
      dot == std::string::npos ? "" : path.substr(dot);
  if (ext == ".jmps") {
    *what = "paged shard";
    uint64_t bad_page = 0;
    const Status status = storage::VerifyPagedShardFile(path, &bad_page);
    if (!status.ok()) {
      return Status(status.code(), "page " + std::to_string(bad_page) +
                                       ": " + status.message());
    }
    return Status::OK();
  }
  if (ext == ".jmix") {
    *what = "whole-file shard";
    auto bytes = wire::ReadFileBytes(path);
    if (!bytes.ok()) return bytes.status();
    return DeserializeIndex(*bytes).status();
  }
  if (ext == ".jmds") {
    *what = "delta segment";
    auto contents = ingest::ReadDeltaSegmentFile(path);
    if (!contents.ok()) return contents.status();
    if (contents->discarded_tail_bytes != 0) {
      return Status::IOError(
          std::to_string(contents->discarded_tail_bytes) +
          " uncommitted tail bytes past the last valid commit record "
          "(recoverable by the ingest coordinator, but the file is not "
          "clean)");
    }
    return Status::OK();
  }
  if (ext == ".jmim") {
    *what = "manifest";
    return ReadManifestFile(path).status();
  }
  return Status::InvalidArgument(
      "unrecognized extension '" + ext +
      "' — verify checks .jmps, .jmix, .jmds, and .jmim files");
}

int RunVerify(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "verify needs at least one file\n");
    return 2;
  }
  // Walk EVERY file and report every failure — an operator auditing a
  // deployment directory wants the full damage list, not the first hit.
  int failures = 0;
  for (int arg = 2; arg < argc; ++arg) {
    const std::string path = argv[arg];
    std::string what = "file";
    const Status status = VerifyOneFile(path, &what);
    if (!status.ok()) {
      ++failures;
      std::fprintf(stderr, "%s: FAILED (%s): %s\n", path.c_str(),
                   what.c_str(), status.ToString().c_str());
      continue;
    }
    std::printf("%s: OK (%s)\n", path.c_str(), what.c_str());
  }
  if (failures > 0) {
    std::fprintf(stderr, "verify: %d of %d files failed\n", failures,
                 argc - 2);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "verify") == 0) {
    return RunVerify(argc, argv);
  }
  if (argc < 5) return Usage(argv[0]);

  const std::string index_path = argv[1];
  const std::string output_dir = argv[2];
  long shards_arg = 0;
  if (!ParseSizeArg(argv[3], 1, 100000, &shards_arg)) {
    std::fprintf(stderr, "num_shards must be an integer in [1, 100000]\n");
    return 2;
  }
  const size_t num_shards = static_cast<size_t>(shards_arg);
  auto policy = ParseShardPartitionPolicy(argv[4]);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 2;
  }

  ShardBuildOptions build_options;
  for (int arg = 5; arg < argc; ++arg) {
    const bool has_value = arg + 1 < argc;
    if (std::strcmp(argv[arg], "--format") == 0 && has_value) {
      auto format = ParseShardFileFormat(argv[++arg]);
      if (!format.ok()) {
        std::fprintf(stderr, "%s\n", format.status().ToString().c_str());
        return 2;
      }
      build_options.format = *format;
    } else if (std::strcmp(argv[arg], "--page-size") == 0 && has_value) {
      long page_size = 0;
      if (!ParseSizeArg(argv[++arg], storage::kMinPageSize,
                        storage::kMaxPageSize, &page_size)) {
        std::fprintf(stderr, "--page-size must be an integer in [%u, %u]\n",
                     storage::kMinPageSize, storage::kMaxPageSize);
        return 2;
      }
      build_options.page_size = static_cast<uint32_t>(page_size);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag '%s'\n", argv[arg]);
      return Usage(argv[0]);
    }
  }

  auto index = ReadIndexFile(index_path);
  if (!index.ok()) {
    std::fprintf(stderr, "failed reading the source index: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("source index : %s (%zu candidates, config %s)\n",
              index_path.c_str(), index->size(),
              index->config().ToString().c_str());

  auto manifest_path =
      BuildShards(*index, num_shards, *policy, output_dir, build_options);
  if (!manifest_path.ok()) {
    std::fprintf(stderr, "failed partitioning the index: %s\n",
                 manifest_path.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote        : %s (%zu shards, policy %s, format %s)\n",
              manifest_path->c_str(), num_shards,
              ShardPartitionPolicyToString(*policy),
              ShardFileFormatToString(build_options.format));

  // Round trip: loading re-verifies manifest structure and, per format,
  // whole-file checksums + counts or paged header/directory integrity
  // against what was just written.
  auto sharded = ShardedSketchIndex::Load(*manifest_path);
  if (!sharded.ok()) {
    std::fprintf(stderr, "failed reloading the sharded index: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  for (size_t s = 0; s < sharded->manifest().shards.size(); ++s) {
    const ShardManifestEntry& entry = sharded->manifest().shards[s];
    std::printf(
        "  shard %-4zu : %s  %6llu candidates  checksum %016llx  %s\n", s,
        entry.path.c_str(),
        static_cast<unsigned long long>(entry.candidate_count),
        static_cast<unsigned long long>(entry.checksum),
        ShardFileFormatToString(entry.format));
  }
  if (sharded->size() != index->size() ||
      sharded->num_shards() != num_shards) {
    std::fprintf(stderr,
                 "FATAL: reloaded sharded index totals disagree with the "
                 "source (%zu/%zu candidates, %zu/%zu shards)\n",
                 sharded->size(), index->size(), sharded->num_shards(),
                 num_shards);
    return 1;
  }
  std::printf("verified     : manifest round trip OK — %zu candidates "
              "across %zu shards\n",
              sharded->size(), sharded->num_shards());
  return 0;
}
