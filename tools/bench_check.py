#!/usr/bin/env python3
"""Bench regression gate: compare a fresh bench_topk_search --json run
against the checked-in baseline (BENCH_topk_search.json) and fail on
meaningful regressions of the named metrics.

Raw millisecond timings on shared CI runners are too noisy to gate
directly, so the gate watches *ratio and count* metrics — speedups, hit
rates, allocation counts — which are stable across machines. Each check
carries a relative tolerance (default 25%) plus a small absolute slack so
near-zero baselines don't turn measurement jitter into failures.

Usage:
    bench_check.py BASELINE.json CURRENT.json

Exit status: 0 when every check passes, 1 on any regression or missing
metric, 2 on unreadable input.
"""

import json
import sys

# (metric, direction, relative_tolerance, absolute_slack)
#   direction "higher": regression when current < baseline*(1-tol) - slack
#   direction "lower":  regression when current > baseline*(1+tol) + slack
CHECKS = [
    # Front tier: the result cache must keep repaying repeated queries.
    ("part8_cache_hit_rate", "higher", 0.25, 0.02),
    ("part8_repeat_speedup", "higher", 0.25, 0.50),
    # Flat hot path: the flattening's measured wins must not erode.
    ("part9_flat_speedup", "higher", 0.25, 0.20),
    ("part9_batched_speedup", "higher", 0.25, 0.20),
    # Allocation counts are deterministic, not timings: a jump means the
    # hot path started allocating again.
    ("part9_probe_allocs_per_query", "lower", 0.25, 1.00),
    ("part9_batched_allocs_per_query", "lower", 0.25, 16.00),
    # Online ingest: ratios only (raw ms are runner noise). Serving while
    # appending+reloading must stay in the same ballpark as steady state,
    # and a half-delta deployment must not cost multiples of a compacted
    # one to read through the overlay.
    ("part10_ingest_slowdown", "lower", 0.50, 1.00),
    ("part10_overlay_cost_ratio", "lower", 0.50, 0.50),
]


def load_metrics(path):
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"bench_check: cannot read '{path}': {error}", file=sys.stderr)
        sys.exit(2)
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        print(f"bench_check: '{path}' has no metrics object", file=sys.stderr)
        sys.exit(2)
    return metrics


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = load_metrics(argv[1])
    current = load_metrics(argv[2])
    failures = 0
    for name, direction, tolerance, slack in CHECKS:
        if name not in baseline:
            print(f"FAIL {name}: missing from baseline '{argv[1]}' — "
                  f"regenerate the baseline with the current bench")
            failures += 1
            continue
        if name not in current:
            print(f"FAIL {name}: missing from current run '{argv[2]}'")
            failures += 1
            continue
        base, cur = baseline[name], current[name]
        if direction == "higher":
            bound = base * (1.0 - tolerance) - slack
            ok = cur >= bound
            detail = f"{cur:.4f} vs baseline {base:.4f} (floor {bound:.4f})"
        else:
            bound = base * (1.0 + tolerance) + slack
            ok = cur <= bound
            detail = f"{cur:.4f} vs baseline {base:.4f} (ceiling {bound:.4f})"
        print(f"{'ok  ' if ok else 'FAIL'} {name}: {detail}")
        failures += 0 if ok else 1
    if failures:
        print(f"bench_check: {failures} regression(s) vs {argv[1]}")
        return 1
    print(f"bench_check: all {len(CHECKS)} checks passed vs {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
