// E4 — Figure 4: effect of the number of distinct values. Trinomial with
// m in {16, 64, 256, 512, 1024}, TUPSK sketches of size n = 256.
//
// Paper shape: increasing m (with n fixed) inflates the bias of the
// discrete-handling estimators — MLE worst (by m = 1024 all its estimates
// are squeezed into a high band ~[2.5, 3.5]), MixedKSG next; the estimators
// do not fully break down.

#include "bench/bench_util.h"

namespace joinmi {
namespace bench {
namespace {

void Run() {
  constexpr size_t kSketchSize = 256;
  constexpr uint64_t kTrials = 40;
  const std::vector<uint64_t> ms = {16, 64, 256, 512, 1024};
  const std::vector<MIEstimatorKind> estimators = {
      MIEstimatorKind::kMLE, MIEstimatorKind::kMixedKSG,
      MIEstimatorKind::kDCKSG};

  for (uint64_t m : ms) {
    std::vector<std::vector<Observation>> all_obs(estimators.size());
    for (uint64_t trial = 0; trial < kTrials; ++trial) {
      SyntheticSpec spec;
      spec.distribution = SyntheticDistribution::kTrinomial;
      spec.m = m;
      spec.num_rows = 10000;
      spec.key_scheme = KeyScheme::kKeyInd;
      spec.seed = 5000 + m * 100 + trial;
      auto dataset_result = GenerateSyntheticDataset(spec);
      if (!dataset_result.ok()) continue;
      const SyntheticDataset& dataset = *dataset_result;
      for (size_t e = 0; e < estimators.size(); ++e) {
        MIOptions options;
        if (estimators[e] == MIEstimatorKind::kDCKSG) {
          options.perturb_sigma = 1e-6;
        }
        auto result = SketchEstimate(dataset, SketchMethod::kTupsk,
                                     kSketchSize, estimators[e], options,
                                     trial + 3);
        if (!result.ok()) continue;
        all_obs[e].push_back(
            Observation{dataset.true_mi, result->mi, result->join_size});
      }
    }
    std::printf("--- Trinomial(m=%llu), TUPSK n=256 ---\n",
                static_cast<unsigned long long>(m));
    PrintBinAxis(/*bin_width=*/0.5, /*max_mi=*/3.5);
    for (size_t e = 0; e < estimators.size(); ++e) {
      PrintBinnedSeries(MIEstimatorKindToString(estimators[e]), all_obs[e],
                        0.5, 3.5);
    }
    for (size_t e = 0; e < estimators.size(); ++e) {
      const SeriesStats stats = Summarize(all_obs[e]);
      std::printf("%-10s bias %+5.2f  MSE %5.3f  r %4.2f  (n=%zu)\n",
                  MIEstimatorKindToString(estimators[e]), stats.bias,
                  stats.mse, stats.pearson, stats.count);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 4): MLE ( ) and MixedKSG bias grows with\n"
      "m; at m=1024 MLE estimates compress into a high band (~[2.5, 3.5]);\n"
      "DC-KSG stays closest to the diagonal.\n");
}

}  // namespace
}  // namespace bench
}  // namespace joinmi

int main() {
  std::printf(
      "E4 / Figure 4: effect of distinct values m on sketch MI accuracy.\n"
      "Trinomial, TUPSK, N=10k rows, n=256, m in {16,64,256,512,1024}.\n\n");
  joinmi::bench::Run();
  return 0;
}
