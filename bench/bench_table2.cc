// E6 — Table II: sketch quality on (simulated) open-data collections.
//
// The paper evaluates on snapshots of NYC Open Data and World Bank Finances
// (WBF); those are not shippable, so this harness uses the open-data
// repository simulator with matched structural statistics (see DESIGN.md).
// Sketches of size n = 1024; estimates whose sketch join has fewer than 100
// samples are discarded, as in the paper.
//
// Columns: average sketch-join size, Spearman's rank correlation between
// sketch estimates and full-join estimates, and MSE.
//
// Paper shape: LV2SK/PRISK recover slightly larger joins (they may use up
// to 2n storage), but TUPSK wins on both Spearman's R and MSE in both
// collections; all methods do better on NYC than on WBF.

#include "bench/bench_util.h"

#include "src/discovery/opendata_sim.h"

namespace joinmi {
namespace bench {
namespace {

MIEstimatorKind EstimatorFor(DataType x, DataType y) {
  return *ChooseEstimator(x, y);
}

void RunCollection(const OpenDataParams& params) {
  auto pairs_result = GenerateOpenDataCollection(params);
  pairs_result.status().Abort("generating collection");
  const auto& pairs = *pairs_result;

  const std::vector<SketchMethod> methods = {
      SketchMethod::kLv2sk, SketchMethod::kPrisk, SketchMethod::kTupsk};
  constexpr size_t kSketchSize = 1024;
  constexpr size_t kMinJoin = 100;

  // Full-join reference estimates (shared across methods).
  std::vector<double> full_mi(pairs.size(),
                              std::numeric_limits<double>::quiet_NaN());
  std::vector<AggKind> agg_for_pair(pairs.size(), AggKind::kAvg);
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto& pair = pairs[p];
    // Type-aware featurization: AVG for numeric features, MODE for strings.
    agg_for_pair[p] = pair.feature_type == DataType::kString ? AggKind::kMode
                                                             : AggKind::kAvg;
    JoinMIConfig config;
    config.aggregation = agg_for_pair[p];
    config.min_join_size = kMinJoin;
    auto full = FullJoinMI(*pair.train, *pair.cand, {"K", "Y", "K", "Z"},
                           config);
    if (full.ok()) full_mi[p] = full->mi;
  }

  for (SketchMethod method : methods) {
    std::vector<double> ref, est;
    double join_acc = 0.0;
    size_t join_count = 0;
    for (size_t p = 0; p < pairs.size(); ++p) {
      if (std::isnan(full_mi[p])) continue;
      const auto& pair = pairs[p];
      JoinMIConfig config;
      config.sketch_method = method;
      config.sketch_capacity = kSketchSize;
      config.aggregation = agg_for_pair[p];
      config.min_join_size = kMinJoin;
      config.estimator = EstimatorFor(pair.feature_type, pair.target_type);
      auto sketched = SketchJoinMI(*pair.train, *pair.cand,
                                   {"K", "Y", "K", "Z"}, config);
      if (!sketched.ok()) continue;
      join_acc += static_cast<double>(sketched->sample_size);
      ++join_count;
      ref.push_back(full_mi[p]);
      est.push_back(sketched->mi);
    }
    const double spearman = SpearmanCorrelation(ref, est).ValueOr(0.0);
    const double mse = MeanSquaredError(ref, est).ValueOr(0.0);
    std::printf("| %-4s | %-6s | %4zu | %8.1f | %5.2f | %5.2f |\n",
                params.name.c_str(), SketchMethodToString(method), ref.size(),
                join_acc / static_cast<double>(join_count), spearman, mse);
  }
}

}  // namespace
}  // namespace bench
}  // namespace joinmi

int main() {
  using namespace joinmi;
  using namespace joinmi::bench;
  std::printf(
      "E6 / Table II: sketch estimates vs full-join estimates on simulated\n"
      "open-data collections (n = 1024, sketch joins < 100 discarded).\n"
      "NYC/WBF stand-ins match the paper's structural statistics; see\n"
      "DESIGN.md for the substitution rationale.\n\n");
  PrintHeader({"coll", "sketch", "pairs", "avg join", "SpR ", " MSE "});
  RunCollection(NYCLikeParams());
  RunCollection(WBFLikeParams());
  std::printf(
      "\nExpected shape (paper Table II): TUPSK attains the strongest\n"
      "Spearman's R and lowest MSE in both collections, despite LV2SK/PRISK\n"
      "recovering comparable or larger sketch joins. On our simulator the\n"
      "strict win shows on the NYC-like collection; on the WBF-like one\n"
      "TUPSK ties LV2SK/PRISK while using ~60%% of their sketch-join\n"
      "storage (the paper's WBF margin is similarly narrow: 0.40 -> 0.45).\n");
  return 0;
}
