// E9+ — design-choice ablations beyond the paper's headline experiments.
//
// A. Estimator bias-correction variants on sketch samples: plain MLE vs
//    Miller–Madow vs Laplace smoothing — the Conclusion's future-work
//    pointer ("estimators based on Laplace smoothing may be more
//    appropriate for controlling false discoveries").
// B. Featurization (AGG) sensitivity: how the choice of aggregation
//    function changes the measured MI on the same table pair (Section
//    III-B's Example 2 discussion).
// C. The Section IV-B worked example, measured: LV2SK vs TUPSK target-
//    entropy retention on the pathological skewed table.

#include "bench/bench_util.h"

#include "src/mi/entropy.h"
#include "src/mi/histogram.h"
#include "src/sketch/key_hash.h"

namespace joinmi {
namespace bench {
namespace {

// ------------------------------------------------------------ Ablation A --

void RunBiasCorrectionAblation() {
  std::printf("A. Plug-in estimator variants on TUPSK sketch samples\n");
  std::printf("   (Trinomial, m sweep, n = 256; MSE vs analytic MI and\n"
              "   false-discovery score = mean estimate on independent "
              "data)\n\n");
  PrintHeader({"variant    ", "  m ", " MSE  ", "indep. score"});
  for (uint64_t m : {64u, 256u, 1024u}) {
    for (MIEstimatorKind kind :
         {MIEstimatorKind::kMLE, MIEstimatorKind::kMillerMadow,
          MIEstimatorKind::kLaplace}) {
      std::vector<Observation> obs;
      double indep_score = 0.0;
      int indep_count = 0;
      for (uint64_t trial = 0; trial < 24; ++trial) {
        SyntheticSpec spec;
        spec.distribution = SyntheticDistribution::kTrinomial;
        spec.m = m;
        spec.num_rows = 10000;
        spec.key_scheme = KeyScheme::kKeyInd;
        spec.seed = 9100 + m + trial;
        // Half the trials draw near-zero true MI to measure the false-
        // discovery behavior that smoothing is meant to control.
        if (trial % 2 == 0) {
          spec.min_mi = 0.0;
          spec.max_mi = 0.05;
        }
        auto dataset = GenerateSyntheticDataset(spec);
        if (!dataset.ok()) continue;
        auto result = SketchEstimate(*dataset, SketchMethod::kTupsk, 256,
                                     kind, {}, trial + 1);
        if (!result.ok()) continue;
        obs.push_back(Observation{dataset->true_mi, result->mi,
                                  result->join_size});
        if (dataset->true_mi < 0.1) {
          indep_score += result->mi;
          ++indep_count;
        }
      }
      const SeriesStats stats = Summarize(obs);
      std::printf("| %-11s | %4llu | %5.3f | %10.3f |\n",
                  MIEstimatorKindToString(kind),
                  static_cast<unsigned long long>(m), stats.mse,
                  indep_count > 0 ? indep_score / indep_count : 0.0);
    }
  }
  std::printf(
      "\n   Shape: Miller-Madow and Laplace cut the near-independent "
      "score\n   (false discoveries) relative to plain MLE, most visibly at "
      "large m.\n\n");
}

// ------------------------------------------------------------ Ablation B --

void RunAggregationAblation() {
  std::printf("B. Featurization function sensitivity (same table pair,\n"
              "   different AGG; full join vs TUPSK n = 512)\n\n");
  // Candidate with ~8 rows per key whose values carry a per-key signal
  // plus within-key spread: different AGGs extract different amounts of
  // information about the target.
  Rng rng(1234);
  std::vector<std::string> train_keys, cand_keys;
  std::vector<int64_t> targets, cand_values;
  constexpr int kKeys = 400;
  for (int i = 0; i < 6000; ++i) {
    const int k = static_cast<int>(rng.NextBounded(kKeys));
    train_keys.push_back("k" + std::to_string(k));
    targets.push_back(k % 7);
  }
  for (int k = 0; k < kKeys; ++k) {
    const int group_size = 2 + static_cast<int>(rng.NextBounded(10));
    for (int j = 0; j < group_size; ++j) {
      cand_keys.push_back("k" + std::to_string(k));
      cand_values.push_back((k % 7) * 12 +
                            static_cast<int64_t>(rng.NextBounded(12)));
    }
  }
  auto train = *Table::FromColumns(
      {{"K", Column::MakeString(train_keys)},
       {"Y", Column::MakeInt64(targets)}});
  auto cand = *Table::FromColumns(
      {{"K", Column::MakeString(cand_keys)},
       {"Z", Column::MakeInt64(cand_values)}});

  PrintHeader({"AGG   ", "full-join MI", "sketch MI", "samples"});
  for (AggKind agg : {AggKind::kAvg, AggKind::kMedian, AggKind::kMin,
                      AggKind::kMax, AggKind::kSum, AggKind::kMode,
                      AggKind::kCount, AggKind::kFirst}) {
    JoinMIConfig config;
    config.sketch_capacity = 512;
    config.aggregation = agg;
    config.estimator = MIEstimatorKind::kMLE;
    const JoinMIQuerySpec spec{"K", "Y", "K", "Z"};
    auto full = FullJoinMI(*train, *cand, spec, config);
    auto sketched = SketchJoinMI(*train, *cand, spec, config);
    if (!full.ok() || !sketched.ok()) continue;
    std::printf("| %-6s | %12.3f | %9.3f | %7zu |\n", AggKindToString(agg),
                full->mi, sketched->mi, sketched->sample_size);
  }
  std::printf(
      "\n   Shape: AVG/MEDIAN/MIN/MAX/SUM (key-signal preserving) score "
      "high;\n   COUNT only reflects key frequencies (low MI); the sketch\n"
      "   tracks the full join for every AGG.\n\n");
}

// ------------------------------------------------------------ Ablation C --

void RunPathologicalEntropy() {
  std::printf("C. Section IV-B worked example: target entropy retained by\n"
              "   sketches of the pathological table (K=[a..e,f*95],\n"
              "   Y=[0*5,1..95], n = 5; 2000 hash-seed trials)\n\n");
  std::vector<std::string> keys = {"a", "b", "c", "d", "e"};
  std::vector<int64_t> targets = {0, 0, 0, 0, 0};
  for (int i = 1; i <= 95; ++i) {
    keys.push_back("f");
    targets.push_back(i);
  }
  auto table = *Table::FromColumns({{"K", Column::MakeString(keys)},
                                    {"Y", Column::MakeInt64(targets)}});
  // Full-table entropy for reference (paper: ~4.5247 nats).
  {
    ValueCoder coder;
    std::vector<uint32_t> codes;
    for (int64_t t : targets) codes.push_back(coder.Encode(Value(t)));
    std::printf("   full-table H(Y) = %.4f nats\n",
                EntropyMLE(BuildHistogram(codes)));
  }
  PrintHeader({"sketch", "mean H(Y) in sketch", "P[H = 0]"});
  for (SketchMethod method : {SketchMethod::kLv2sk, SketchMethod::kTupsk}) {
    double h_acc = 0.0;
    int zero_entropy = 0;
    constexpr int kTrials = 2000;
    for (int trial = 0; trial < kTrials; ++trial) {
      SketchOptions options;
      options.capacity = 5;
      options.hash_seed = static_cast<uint32_t>(trial + 1);
      options.sampling_seed = static_cast<uint64_t>(trial) * 13 + 7;
      auto builder = MakeSketchBuilder(method, options);
      auto sketch = *builder->SketchTrain(*(*table->GetColumn("K")),
                                          *(*table->GetColumn("Y")));
      ValueCoder coder;
      std::vector<uint32_t> codes;
      for (const auto& e : sketch.entries) codes.push_back(coder.Encode(e.value));
      const double h = EntropyMLE(BuildHistogram(codes));
      h_acc += h;
      if (h == 0.0) ++zero_entropy;
    }
    std::printf("| %-6s | %19.3f | %8.3f |\n", SketchMethodToString(method),
                h_acc / kTrials, static_cast<double>(zero_entropy) / kTrials);
  }
  std::printf(
      "\n   Shape: LV2SK collapses to zero target entropy whenever level-1\n"
      "   skips key f (P ~ 1/6, the paper's calculation); TUPSK never "
      "does.\n");
}

}  // namespace
}  // namespace bench
}  // namespace joinmi

int main() {
  std::printf("E9+ / Design-choice ablations (see DESIGN.md section 3).\n\n");
  joinmi::bench::RunBiasCorrectionAblation();
  joinmi::bench::RunAggregationAblation();
  joinmi::bench::RunPathologicalEntropy();
  return 0;
}
