// E5 — Table I: comparison of all sketching methods on synthetic data.
// Sketch size n = 256; datasets span both join key distributions (KeyInd,
// KeyDep) and the m sweeps used in Figures 3-4.
//
// Columns: average sketch-join size, join size as % of n, and MSE of the
// MI estimate vs the analytic MI.
//
// Paper shape (Table I):
//  - INDSK recovers the smallest joins (~40-50% of n) and has high MSE;
//  - CSK sits in between (~60-75%);
//  - LV2SK/PRISK recover ~90-100% with identical results to each other;
//  - TUPSK recovers 100% and attains the lowest MSE on both distributions.

#include "bench/bench_util.h"

namespace joinmi {
namespace bench {
namespace {

struct MethodStats {
  std::vector<Observation> obs;
};

void RunDistribution(SyntheticDistribution distribution,
                     const char* display_name) {
  constexpr size_t kSketchSize = 256;
  const std::vector<SketchMethod> methods = {
      SketchMethod::kCsk, SketchMethod::kIndsk, SketchMethod::kLv2sk,
      SketchMethod::kPrisk, SketchMethod::kTupsk};
  std::vector<MethodStats> stats(methods.size());

  // Mirror the paper: results aggregated over different join-key schemes
  // and distribution parameters m.
  // m sweeps reach into the hard regime (m ~ n and beyond) where estimator
  // breakdown dominates the MSE, as in the paper's aggregation.
  const std::vector<uint64_t> ms =
      distribution == SyntheticDistribution::kTrinomial
          ? std::vector<uint64_t>{16, 64, 256, 512}
          : std::vector<uint64_t>{8, 64, 256, 512};
  constexpr uint64_t kTrialsPerConfig = 8;

  for (uint64_t m : ms) {
    for (KeyScheme scheme : {KeyScheme::kKeyInd, KeyScheme::kKeyDep}) {
      // KeyDep only when the candidate's distinct keys fit a sketch
      // (m <= n); beyond that every method just truncates the key domain
      // and the comparison measures capacity, not sampling quality.
      if (scheme == KeyScheme::kKeyDep && m > kSketchSize) continue;
      for (uint64_t trial = 0; trial < kTrialsPerConfig; ++trial) {
        SyntheticSpec spec;
        spec.distribution = distribution;
        spec.m = m;
        spec.num_rows = 10000;
        spec.key_scheme = scheme;
        spec.seed = 6000 + m * 10 + trial;
        auto dataset_result = GenerateSyntheticDataset(spec);
        if (!dataset_result.ok()) continue;
        const SyntheticDataset& dataset = *dataset_result;
        // Estimator by data type, as in Section V: MLE for the discrete-
        // discrete Trinomial, MixedKSG for the mixed CDUnif.
        const MIEstimatorKind estimator =
            distribution == SyntheticDistribution::kTrinomial
                ? MIEstimatorKind::kMLE
                : MIEstimatorKind::kMixedKSG;
        for (size_t mi = 0; mi < methods.size(); ++mi) {
          // min_join_size = 1: the paper's synthetic comparison includes
          // estimates from however few samples a method recovers — that IS
          // the penalty for poor coordination.
          auto result = SketchEstimate(dataset, methods[mi], kSketchSize,
                                       estimator, {},
                                       /*sampling_seed=*/trial * 31 + 5,
                                       /*min_join_size=*/1);
          if (!result.ok()) {
            // Record a zero-size join so avg join size reflects failures
            // (INDSK often recovers too few samples to estimate).
            stats[mi].obs.push_back(Observation{dataset.true_mi,
                                                dataset.true_mi, 0});
            continue;
          }
          stats[mi].obs.push_back(
              Observation{dataset.true_mi, result->mi, result->join_size});
        }
      }
    }
  }

  for (size_t mi = 0; mi < methods.size(); ++mi) {
    // MSE over successful estimates only; join size over all trials.
    std::vector<double> truth, est;
    double join_acc = 0.0;
    for (const Observation& o : stats[mi].obs) {
      join_acc += static_cast<double>(o.join_size);
      if (o.join_size == 0) continue;
      truth.push_back(o.true_mi);
      est.push_back(o.estimate);
    }
    const double avg_join = join_acc / static_cast<double>(stats[mi].obs.size());
    const double mse =
        truth.empty() ? 0.0 : MeanSquaredError(truth, est).ValueOr(0.0);
    std::printf("| %-9s | %-6s | %7.1f | %5.1f%% | %5.3f |\n", display_name,
                SketchMethodToString(methods[mi]), avg_join,
                100.0 * avg_join / static_cast<double>(kSketchSize), mse);
  }
}

}  // namespace
}  // namespace bench
}  // namespace joinmi

int main() {
  using namespace joinmi::bench;
  std::printf(
      "E5 / Table I: sketch methods on synthetic data (n = 256, N = 10k).\n"
      "Aggregated over KeyInd+KeyDep and the m sweep, as in the paper.\n\n");
  PrintHeader({"dataset  ", "sketch", "avg join", "  %  ", " MSE "});
  RunDistribution(joinmi::SyntheticDistribution::kCDUnif, "CDUnif");
  RunDistribution(joinmi::SyntheticDistribution::kTrinomial, "Trinomial");
  std::printf(
      "\nExpected shape (paper Table I): INDSK smallest joins & largest "
      "MSE;\nCSK next; LV2SK = PRISK ~90-100%%; TUPSK 100%% joins and best "
      "MSE.\n");
  return 0;
}
