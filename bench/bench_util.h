// Shared helpers for the experiment harnesses in bench/: trial runners that
// generate synthetic datasets, evaluate sketch estimates against analytic
// or full-join MI, and print the paper-style report tables.

#ifndef JOINMI_BENCH_BENCH_UTIL_H_
#define JOINMI_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/string_util.h"
#include "src/core/join_mi.h"
#include "src/sketch/sketch_join.h"
#include "src/synthetic/pipeline.h"

namespace joinmi {
namespace bench {

/// One (analytic MI, estimate) observation.
struct Observation {
  double true_mi = 0.0;
  double estimate = 0.0;
  size_t join_size = 0;
};

/// Aggregate error metrics over a series of observations.
struct SeriesStats {
  size_t count = 0;
  double bias = 0.0;      // mean(estimate - truth)
  double mse = 0.0;
  double rmse = 0.0;
  double pearson = 0.0;
  double spearman = 0.0;
  double avg_join_size = 0.0;
};

inline SeriesStats Summarize(const std::vector<Observation>& obs) {
  SeriesStats stats;
  stats.count = obs.size();
  if (obs.empty()) return stats;
  std::vector<double> truth, est;
  truth.reserve(obs.size());
  est.reserve(obs.size());
  double join_acc = 0.0;
  for (const Observation& o : obs) {
    truth.push_back(o.true_mi);
    est.push_back(o.estimate);
    stats.bias += (o.estimate - o.true_mi);
    join_acc += static_cast<double>(o.join_size);
  }
  stats.bias /= static_cast<double>(obs.size());
  stats.avg_join_size = join_acc / static_cast<double>(obs.size());
  stats.mse = MeanSquaredError(truth, est).ValueOr(0.0);
  stats.rmse = std::sqrt(stats.mse);
  stats.pearson = PearsonCorrelation(truth, est).ValueOr(0.0);
  stats.spearman = SpearmanCorrelation(truth, est).ValueOr(0.0);
  return stats;
}

/// Builds train/candidate sketches for a dataset and estimates MI.
/// Candidate keys are unique by construction (both KeyInd and KeyDep), so
/// kFirst is the aggregation, matching the generation semantics.
inline Result<SketchMIResult> SketchEstimate(const SyntheticDataset& dataset,
                                             SketchMethod method, size_t n,
                                             MIEstimatorKind estimator,
                                             const MIOptions& mi_options = {},
                                             uint64_t sampling_seed = 0x5EED,
                                             size_t min_join_size = 8) {
  SketchOptions options;
  options.capacity = n;
  options.sampling_seed = sampling_seed;
  auto builder = MakeSketchBuilder(method, options);
  const auto& train = dataset.tables.train;
  const auto& cand = dataset.tables.cand;
  JOINMI_ASSIGN_OR_RETURN(auto train_keys, train->GetColumn(kKeyColumn));
  JOINMI_ASSIGN_OR_RETURN(auto train_target, train->GetColumn(kTargetColumn));
  JOINMI_ASSIGN_OR_RETURN(auto cand_keys, cand->GetColumn(kKeyColumn));
  JOINMI_ASSIGN_OR_RETURN(auto cand_value, cand->GetColumn(kFeatureColumn));
  // INDSK must sample the two tables with independent randomness.
  SketchOptions cand_options = options;
  cand_options.sampling_seed = sampling_seed * 0x9E3779B9ULL + 1;
  auto cand_builder = MakeSketchBuilder(method, cand_options);
  JOINMI_ASSIGN_OR_RETURN(Sketch s_train,
                          builder->SketchTrain(*train_keys, *train_target));
  JOINMI_ASSIGN_OR_RETURN(
      Sketch s_cand,
      cand_builder->SketchCandidate(*cand_keys, *cand_value, AggKind::kFirst));
  return EstimateSketchMI(s_train, s_cand, estimator, mi_options,
                          min_join_size);
}

/// Prints a markdown-ish table header + separator.
inline void PrintHeader(const std::vector<std::string>& columns) {
  std::string line = "|";
  std::string sep = "|";
  for (const auto& c : columns) {
    line += " " + c + " |";
    sep += std::string(c.size() + 2, '-') + "|";
  }
  std::printf("%s\n%s\n", line.c_str(), sep.c_str());
}

/// Bins observations by true MI and prints mean estimate per bin — the
/// textual analogue of the paper's scatter plots.
inline void PrintBinnedSeries(const std::string& label,
                              const std::vector<Observation>& obs,
                              double bin_width, double max_mi) {
  const size_t bins = static_cast<size_t>(std::ceil(max_mi / bin_width));
  std::vector<double> sum(bins, 0.0);
  std::vector<size_t> count(bins, 0);
  for (const Observation& o : obs) {
    size_t b = static_cast<size_t>(o.true_mi / bin_width);
    if (b >= bins) b = bins - 1;
    sum[b] += o.estimate;
    ++count[b];
  }
  std::printf("%-32s", label.c_str());
  for (size_t b = 0; b < bins; ++b) {
    if (count[b] == 0) {
      std::printf("    -  ");
    } else {
      std::printf(" %6.2f", sum[b] / static_cast<double>(count[b]));
    }
  }
  std::printf("\n");
}

inline void PrintBinAxis(double bin_width, double max_mi) {
  const size_t bins = static_cast<size_t>(std::ceil(max_mi / bin_width));
  std::printf("%-32s", "true MI bin midpoint ->");
  for (size_t b = 0; b < bins; ++b) {
    std::printf(" %6.2f", (static_cast<double>(b) + 0.5) * bin_width);
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace joinmi

#endif  // JOINMI_BENCH_BENCH_UTIL_H_
