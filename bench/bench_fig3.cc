// E3 — Figure 3: true MI vs sketch MI estimates for CDUnif, n = 256,
// sweeping the distinct-value parameter m in [2, 1000].
//
// Paper shape: estimates track truth at low MI, then break down as
// I(X, Y) grows (m/n >> 1): around I ~ 4.25 for LV2SK + DC-KSG (earliest
// and hardest) and I ~ 4.85 for the others, while TUPSK degrades more
// gracefully than LV2SK.

#include "bench/bench_util.h"

namespace joinmi {
namespace bench {
namespace {

struct Combo {
  SketchMethod method;
  MIEstimatorKind estimator;
  KeyScheme scheme;
  MIOptions options;
};

void Run() {
  constexpr size_t kSketchSize = 256;
  constexpr int kTrials = 80;
  std::vector<Combo> combos;
  for (SketchMethod method : {SketchMethod::kLv2sk, SketchMethod::kTupsk}) {
    for (MIEstimatorKind estimator :
         {MIEstimatorKind::kMixedKSG, MIEstimatorKind::kDCKSG}) {
      // CDUnif's X is discrete, so both key schemes apply. With unique
      // KeyInd keys LV2SK reduces to TUPSK (paper Section IV-A); the
      // method separation shows under KeyDep.
      for (KeyScheme scheme : {KeyScheme::kKeyInd, KeyScheme::kKeyDep}) {
        Combo combo{method, estimator, scheme, {}};
        combo.options.k = 3;
        combos.push_back(combo);
      }
    }
  }
  std::vector<std::vector<Observation>> all_obs(combos.size());

  Rng m_rng(99);
  for (int trial = 0; trial < kTrials; ++trial) {
    // Log-uniform m in [2, 1000] spreads observations across the MI range
    // [0.3, 6.2] like the paper's uniform draw does.
    const double log_m = m_rng.Uniform(std::log(2.0), std::log(1000.0));
    const uint64_t m = static_cast<uint64_t>(std::exp(log_m));
    for (KeyScheme scheme : {KeyScheme::kKeyInd, KeyScheme::kKeyDep}) {
      SyntheticSpec spec;
      spec.distribution = SyntheticDistribution::kCDUnif;
      spec.m = m;
      spec.num_rows = 10000;
      spec.key_scheme = scheme;
      spec.seed = 4000 + static_cast<uint64_t>(trial);
      auto dataset_result = GenerateSyntheticDataset(spec);
      if (!dataset_result.ok()) continue;
      const SyntheticDataset& dataset = *dataset_result;
      for (size_t c = 0; c < combos.size(); ++c) {
        if (combos[c].scheme != scheme) continue;
        auto result = SketchEstimate(dataset, combos[c].method, kSketchSize,
                                     combos[c].estimator, combos[c].options,
                                     /*sampling_seed=*/trial + 7);
        if (!result.ok()) continue;
        all_obs[c].push_back(
            Observation{dataset.true_mi, result->mi, result->join_size});
      }
    }
  }

  std::printf("Binned series (mean sketch estimate per true-MI bin):\n\n");
  PrintBinAxis(/*bin_width=*/0.7, /*max_mi=*/6.3);
  for (size_t c = 0; c < combos.size(); ++c) {
    const std::string label =
        std::string(SketchMethodToString(combos[c].method)) + " " +
        MIEstimatorKindToString(combos[c].estimator) + " " +
        KeySchemeToString(combos[c].scheme);
    PrintBinnedSeries(label, all_obs[c], 0.7, 6.3);
  }

  // Breakdown diagnostics: error in the high-MI region I > 4.25.
  std::printf("\nHigh-MI regime (true MI > 4.25) mean estimate shortfall:\n\n");
  PrintHeader({"method", "estimator", "  n", "truth ", "estim ", "short "});
  for (size_t c = 0; c < combos.size(); ++c) {
    double truth_acc = 0.0, est_acc = 0.0;
    size_t count = 0;
    for (const Observation& o : all_obs[c]) {
      if (o.true_mi <= 4.25) continue;
      truth_acc += o.true_mi;
      est_acc += o.estimate;
      ++count;
    }
    if (count == 0) continue;
    const double truth_mean = truth_acc / static_cast<double>(count);
    const double est_mean = est_acc / static_cast<double>(count);
    std::printf("| %-6s | %-9s | %3zu | %5.2f | %5.2f | %5.2f |\n",
                SketchMethodToString(combos[c].method),
                MIEstimatorKindToString(combos[c].estimator), count,
                truth_mean, est_mean, truth_mean - est_mean);
  }
  std::printf(
      "\nExpected shape (paper Fig. 3): estimates saturate / collapse as\n"
      "I -> 4.85 (m -> n); LV2SK+DC-KSG breaks down earliest (~4.25); TUPSK\n"
      "degrades more gracefully than LV2SK.\n");
}

}  // namespace
}  // namespace bench
}  // namespace joinmi

int main() {
  std::printf(
      "E3 / Figure 3: sketch MI estimates vs true MI for CDUnif.\n"
      "m in [2, 1000], N=10k rows, sketch size n=256.\n\n");
  joinmi::bench::Run();
  return 0;
}
