// E1 — Section V-B1 "True vs. Estimated MI on Full-Table Joins".
//
// Paper claim: with fully materialized joins of N = 10k rows, MI estimates
// track the analytic MI with RMSE < 0.07 and Pearson's r > 0.99 for every
// estimator applicable to the data type, on both Trinomial and CDUnif.
//
// This harness regenerates that check and prints one row per
// (distribution, estimator).

#include "bench/bench_util.h"

namespace joinmi {
namespace bench {
namespace {

void RunTrinomial() {
  struct Combo {
    MIEstimatorKind estimator;
    MIOptions options;
  };
  std::vector<Combo> combos = {
      {MIEstimatorKind::kMLE, {}},
      {MIEstimatorKind::kMixedKSG, {}},
      {MIEstimatorKind::kDCKSG, {}},
  };
  // DC-KSG treats Y as continuous: perturb to break ties (Section V-A).
  combos[2].options.perturb_sigma = 1e-6;

  std::vector<std::vector<Observation>> all_obs(combos.size());
  constexpr int kDatasets = 40;
  for (int d = 0; d < kDatasets; ++d) {
    SyntheticSpec spec;
    spec.distribution = SyntheticDistribution::kTrinomial;
    spec.m = 64;
    spec.num_rows = 10000;
    spec.key_scheme = KeyScheme::kKeyInd;
    spec.seed = 1000 + static_cast<uint64_t>(d);
    spec.min_mi = 0.0;
    spec.max_mi = 2.5;
    auto dataset_result = GenerateSyntheticDataset(spec);
    if (!dataset_result.ok()) continue;
    const SyntheticDataset& dataset = *dataset_result;
    PairedSample sample;
    sample.x = dataset.xs;
    sample.y = dataset.ys;
    for (size_t c = 0; c < combos.size(); ++c) {
      auto mi = EstimateMI(combos[c].estimator, sample, combos[c].options);
      if (!mi.ok()) continue;
      all_obs[c].push_back(Observation{dataset.true_mi, *mi, sample.size()});
    }
  }
  for (size_t c = 0; c < combos.size(); ++c) {
    const SeriesStats stats = Summarize(all_obs[c]);
    std::printf("| Trinomial(m=64)  | %-9s | %3zu | %6.3f | %6.3f | %5.3f |\n",
                MIEstimatorKindToString(combos[c].estimator), stats.count,
                stats.rmse, stats.bias, stats.pearson);
  }
}

void RunCDUnif() {
  struct Combo {
    MIEstimatorKind estimator;
    MIOptions options;
  };
  std::vector<Combo> combos = {
      {MIEstimatorKind::kMixedKSG, {}},
      {MIEstimatorKind::kDCKSG, {}},
  };
  // MixedKSG's log-based marginal terms carry a k-dependent bias on mixture
  // data; k = 5 is the reference implementation's default and keeps the
  // bias inside the paper's reported envelope.
  combos[0].options.k = 5;
  std::vector<std::vector<Observation>> all_obs(combos.size());
  constexpr int kDatasets = 40;
  Rng m_rng(777);
  for (int d = 0; d < kDatasets; ++d) {
    SyntheticSpec spec;
    spec.distribution = SyntheticDistribution::kCDUnif;
    // Keep m modest here so the estimators are in their working range; the
    // breakdown at large m is Figure 3's subject, not this experiment's.
    spec.m = 2 + m_rng.NextBounded(30);
    spec.num_rows = 10000;
    spec.key_scheme = KeyScheme::kKeyInd;
    spec.seed = 2000 + static_cast<uint64_t>(d);
    auto dataset_result = GenerateSyntheticDataset(spec);
    if (!dataset_result.ok()) continue;
    const SyntheticDataset& dataset = *dataset_result;
    PairedSample sample;
    sample.x = dataset.xs;
    sample.y = dataset.ys;
    for (size_t c = 0; c < combos.size(); ++c) {
      auto mi = EstimateMI(combos[c].estimator, sample, combos[c].options);
      if (!mi.ok()) continue;
      all_obs[c].push_back(Observation{dataset.true_mi, *mi, sample.size()});
    }
  }
  for (size_t c = 0; c < combos.size(); ++c) {
    const SeriesStats stats = Summarize(all_obs[c]);
    std::printf("| CDUnif(m<=31)    | %-9s | %3zu | %6.3f | %6.3f | %5.3f |\n",
                MIEstimatorKindToString(combos[c].estimator), stats.count,
                stats.rmse, stats.bias, stats.pearson);
  }
}

}  // namespace
}  // namespace bench
}  // namespace joinmi

int main() {
  using namespace joinmi::bench;
  std::printf(
      "E1 / Section V-B1: MI estimated on the fully materialized join "
      "(N = 10k)\nvs. analytic MI. Paper: RMSE < 0.07, Pearson r > 0.99.\n\n");
  PrintHeader({"distribution     ", "estimator", "  n", " RMSE ", " bias ",
               "  r  "});
  RunTrinomial();
  RunCDUnif();
  std::printf(
      "\nExpected shape: RMSE small (paper: < 0.07) and r ~ 1 for MLE and\n"
      "MixedKSG; DC-KSG close behind (its perturbation adds slight noise).\n");
  return 0;
}
