// E2 — Figure 2: true MI vs sketch MI estimates, Trinomial(m = 512),
// sketch size n = 256.
//
// Grid: {LV2SK, TUPSK} x {MLE, MixedKSG, DC-KSG} x {KeyInd, KeyDep}.
// Paper shape:
//  - both bias and variance grow vs the full-join setting of E1;
//  - MLE overestimates most at low true MI; MixedKSG peaks mid-range;
//  - under LV2SK, KeyDep inflates the bias of MLE and MixedKSG (and pushes
//    DC-KSG slightly down) relative to KeyInd;
//  - TUPSK's curves are nearly identical across KeyInd / KeyDep — it is
//    robust to the join-key distribution.

#include "bench/bench_util.h"

namespace joinmi {
namespace bench {
namespace {

struct Combo {
  SketchMethod method;
  MIEstimatorKind estimator;
  KeyScheme scheme;
  MIOptions options;
};

void Run() {
  constexpr size_t kSketchSize = 256;
  constexpr uint64_t kTrials = 60;
  std::vector<Combo> combos;
  for (SketchMethod method : {SketchMethod::kLv2sk, SketchMethod::kTupsk}) {
    for (MIEstimatorKind estimator :
         {MIEstimatorKind::kMLE, MIEstimatorKind::kMixedKSG,
          MIEstimatorKind::kDCKSG}) {
      for (KeyScheme scheme : {KeyScheme::kKeyInd, KeyScheme::kKeyDep}) {
        Combo combo{method, estimator, scheme, {}};
        if (estimator == MIEstimatorKind::kDCKSG) {
          combo.options.perturb_sigma = 1e-6;  // one continuous marginal
        }
        combos.push_back(combo);
      }
    }
  }
  std::vector<std::vector<Observation>> all_obs(combos.size());

  for (uint64_t trial = 0; trial < kTrials; ++trial) {
    for (KeyScheme scheme : {KeyScheme::kKeyInd, KeyScheme::kKeyDep}) {
      SyntheticSpec spec;
      spec.distribution = SyntheticDistribution::kTrinomial;
      spec.m = 512;
      spec.num_rows = 10000;
      spec.key_scheme = scheme;
      spec.seed = 31000 + trial;
      auto dataset_result = GenerateSyntheticDataset(spec);
      if (!dataset_result.ok()) continue;
      const SyntheticDataset& dataset = *dataset_result;
      for (size_t c = 0; c < combos.size(); ++c) {
        if (combos[c].scheme != scheme) continue;
        auto result =
            SketchEstimate(dataset, combos[c].method, kSketchSize,
                           combos[c].estimator, combos[c].options,
                           /*sampling_seed=*/trial + 1);
        if (!result.ok()) continue;
        all_obs[c].push_back(
            Observation{dataset.true_mi, result->mi, result->join_size});
      }
    }
  }

  std::printf("Binned series (mean sketch estimate per true-MI bin):\n\n");
  PrintBinAxis(/*bin_width=*/0.5, /*max_mi=*/3.5);
  for (size_t c = 0; c < combos.size(); ++c) {
    const std::string label =
        std::string(SketchMethodToString(combos[c].method)) + " " +
        MIEstimatorKindToString(combos[c].estimator) + " " +
        KeySchemeToString(combos[c].scheme);
    PrintBinnedSeries(label, all_obs[c], 0.5, 3.5);
  }

  std::printf("\nSummary metrics:\n\n");
  PrintHeader({"method", "estimator", "keys  ", "  n", " bias ", " MSE  ",
               "  r  "});
  for (size_t c = 0; c < combos.size(); ++c) {
    const SeriesStats stats = Summarize(all_obs[c]);
    std::printf("| %-6s | %-9s | %-6s | %3zu | %+5.2f | %5.3f | %4.2f |\n",
                SketchMethodToString(combos[c].method),
                MIEstimatorKindToString(combos[c].estimator),
                KeySchemeToString(combos[c].scheme), stats.count, stats.bias,
                stats.mse, stats.pearson);
  }

  // Headline comparison: KeyDep-vs-KeyInd MSE gap per method (averaged over
  // estimators). TUPSK's gap should be much smaller than LV2SK's.
  for (SketchMethod method : {SketchMethod::kLv2sk, SketchMethod::kTupsk}) {
    double ind_mse = 0.0, dep_mse = 0.0;
    int ind_n = 0, dep_n = 0;
    for (size_t c = 0; c < combos.size(); ++c) {
      if (combos[c].method != method) continue;
      const SeriesStats stats = Summarize(all_obs[c]);
      if (combos[c].scheme == KeyScheme::kKeyInd) {
        ind_mse += stats.mse;
        ++ind_n;
      } else {
        dep_mse += stats.mse;
        ++dep_n;
      }
    }
    std::printf(
        "\n%s: mean MSE KeyInd = %.3f, KeyDep = %.3f (KeyDep/KeyInd = "
        "%.2fx)",
        SketchMethodToString(method), ind_mse / ind_n, dep_mse / dep_n,
        (dep_mse / dep_n) / (ind_mse / ind_n));
  }
  std::printf(
      "\n\nExpected shape (paper Fig. 2): LV2SK degrades under KeyDep; "
      "TUPSK is\nnearly unchanged across key schemes.\n");
}

}  // namespace
}  // namespace bench
}  // namespace joinmi

int main() {
  std::printf(
      "E2 / Figure 2: sketch MI estimates vs true MI.\n"
      "Trinomial(m=512), N=10k rows, sketch size n=256.\n\n");
  joinmi::bench::Run();
  return 0;
}
