// Throughput benchmark for the parallel top-k discovery engine.
//
// Compares three ways of ranking every candidate column pair of a synthetic
// repository against one base table:
//
//   naive serial    one SketchJoinMI call per candidate — rebuilds the base
//                   table's sketch for every query (the pre-engine API);
//   engine x1       TopKJoinMISearch with 1 thread — base sketch built once
//                   and probed via the prepared train index;
//   engine xT       TopKJoinMISearch with T threads (default 4).
//
// The engine's win decomposes into base-sketch reuse (visible even on one
// core) and thread-level parallelism (visible with >= 2 cores). Both
// speedup factors are reported, and the 1-thread and T-thread rankings are
// cross-checked for equality before any number is printed.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/join_mi.h"
#include "src/discovery/search.h"
#include "src/table/table.h"

namespace joinmi {
namespace bench {
namespace {

constexpr size_t kBaseRows = 120000;
constexpr size_t kDistinctKeys = 4000;
constexpr size_t kCandidateTables = 48;
constexpr size_t kCandidateRows = 4000;
constexpr size_t kTopK = 10;

std::string KeyName(uint64_t i) { return "key" + std::to_string(i); }

std::shared_ptr<Table> MakeBaseTable(Rng* rng) {
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  keys.reserve(kBaseRows);
  targets.reserve(kBaseRows);
  for (size_t i = 0; i < kBaseRows; ++i) {
    const uint64_t k = rng->NextBounded(kDistinctKeys);
    keys.push_back(KeyName(k));
    targets.push_back(static_cast<int64_t>(k % 16));
  }
  return *Table::FromColumns({{"K", Column::MakeString(std::move(keys))},
                              {"Y", Column::MakeInt64(std::move(targets))}});
}

TableRepository MakeRepository(Rng* rng) {
  TableRepository repository;
  for (size_t t = 0; t < kCandidateTables; ++t) {
    std::vector<std::string> keys;
    std::vector<int64_t> values;
    keys.reserve(kCandidateRows);
    values.reserve(kCandidateRows);
    // Candidates range from perfectly informative (t = 0 copies the target
    // function) to pure noise, so the top-k ranking is non-trivial.
    const uint64_t noise = 1 + static_cast<uint64_t>(t);
    for (size_t i = 0; i < kCandidateRows; ++i) {
      const uint64_t k = rng->NextBounded(kDistinctKeys);
      keys.push_back(KeyName(k));
      const int64_t signal = static_cast<int64_t>(k % 16);
      const int64_t jitter = static_cast<int64_t>(rng->NextBounded(noise));
      values.push_back(signal + jitter);
    }
    repository
        .AddTable("cand" + std::to_string(t),
                  *Table::FromColumns(
                      {{"K", Column::MakeString(std::move(keys))},
                       {"V", Column::MakeInt64(std::move(values))}}))
        .Abort("adding candidate table");
  }
  return repository;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

JoinMIConfig MakeJoinConfig() {
  JoinMIConfig config;
  config.sketch_capacity = 512;
  config.min_join_size = 32;
  return config;
}

// The pre-engine API: one independent SketchJoinMI per candidate pair,
// keeping the best k by (mi desc, enumeration order) like the engine does.
double RunNaiveSerial(const Table& base, const TableRepository& repository) {
  const JoinMIConfig config = MakeJoinConfig();
  const auto start = std::chrono::steady_clock::now();
  size_t evaluated = 0;
  double best = 0.0;
  for (const ColumnPairRef& ref : repository.ExtractColumnPairs()) {
    auto table = repository.GetTable(ref.table_name);
    if (!table.ok()) continue;
    auto estimate =
        SketchJoinMI(base, **table,
                     {"K", "Y", ref.key_column, ref.value_column}, config);
    if (!estimate.ok()) continue;
    ++evaluated;
    if (estimate->mi > best) best = estimate->mi;
  }
  const double ms = MillisSince(start);
  std::printf("naive serial : %8.1f ms  (%zu candidates evaluated, best MI "
              "%.3f)\n",
              ms, evaluated, best);
  return ms;
}

double RunEngine(const Table& base, const TableRepository& repository,
                 size_t num_threads, TopKSearchResult* result_out) {
  SearchConfig config;
  config.num_threads = num_threads;
  config.join_config = MakeJoinConfig();
  const auto start = std::chrono::steady_clock::now();
  auto result = TopKJoinMISearch(base, {"K", "Y"}, repository, kTopK, config);
  const double ms = MillisSince(start);
  result.status().Abort("TopKJoinMISearch");
  std::printf("engine x%-4zu: %8.1f ms  (%zu evaluated, %zu skipped, top hit "
              "%s MI %.3f)\n",
              num_threads, ms, result->num_evaluated, result->num_skipped,
              result->hits.empty()
                  ? "-"
                  : result->hits[0].candidate.table_name.c_str(),
              result->hits.empty() ? 0.0 : result->hits[0].estimate.mi);
  if (result_out != nullptr) *result_out = std::move(*result);
  return ms;
}

void ExpectSameRanking(const TopKSearchResult& a, const TopKSearchResult& b) {
  bool same = a.hits.size() == b.hits.size();
  for (size_t i = 0; same && i < a.hits.size(); ++i) {
    same = a.hits[i].candidate.table_name == b.hits[i].candidate.table_name &&
           a.hits[i].candidate.value_column == b.hits[i].candidate.value_column &&
           a.hits[i].estimate.mi == b.hits[i].estimate.mi;
  }
  if (!same) {
    std::fprintf(stderr,
                 "FATAL: 1-thread and multi-thread rankings disagree\n");
    std::abort();
  }
}

int Run(size_t threads) {
  std::printf("top-k discovery throughput — base %zu rows, %zu candidate "
              "tables x %zu rows, sketch n=512, k=%zu\n\n",
              kBaseRows, kCandidateTables, kCandidateRows, kTopK);
  Rng rng(20240612);
  auto base = MakeBaseTable(&rng);
  TableRepository repository = MakeRepository(&rng);

  const double naive_ms = RunNaiveSerial(*base, repository);
  TopKSearchResult serial_result;
  const double engine1_ms = RunEngine(*base, repository, 1, &serial_result);
  TopKSearchResult parallel_result;
  const double engineN_ms =
      RunEngine(*base, repository, threads, &parallel_result);
  ExpectSameRanking(serial_result, parallel_result);

  std::printf("\nspeedup vs naive serial: engine x1 %.2fx, engine x%zu "
              "%.2fx\n",
              naive_ms / engine1_ms, threads, naive_ms / engineN_ms);
  std::printf("thread scaling (engine x%zu vs x1): %.2fx\n", threads,
              engine1_ms / engineN_ms);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace joinmi

int main(int argc, char** argv) {
  long threads = 4;
  if (argc > 1) threads = std::strtol(argv[1], nullptr, 10);
  if (threads < 1 || threads > 256) {
    std::fprintf(stderr, "usage: %s [threads 1..256]\n", argv[0]);
    return 2;
  }
  return joinmi::bench::Run(static_cast<size_t>(threads));
}
