// Throughput benchmark for the parallel top-k discovery engine.
//
// Part 1 compares three ways of ranking every candidate column pair of a
// synthetic repository against one base table:
//
//   naive serial    one SketchJoinMI call per candidate — rebuilds the base
//                   table's sketch for every query (the pre-engine API);
//   engine x1       TopKJoinMISearch with 1 thread — base sketch built once
//                   and probed via the prepared train index;
//   engine xT       TopKJoinMISearch with T threads (default 4).
//
// Part 2 is the sketch-once / query-many deployment (the paper's Sections I
// and V-C): a SketchIndex is built once (every candidate sketched offline)
// and then probed by a stream of queries. For each query count Q it
// compares
//
//   per-query sketching   Q x TopKJoinMISearch(repository) — candidates
//                         re-sketched on every query;
//   index-backed probing  index build (paid once) + Q x
//                         TopKJoinMISearch(index) — queries only join
//                         against prepared candidate probe maps.
//
// Amortization is the headline: the index path pays the candidate
// sketching cost once, so it wins as soon as a couple of queries share it.
// Rankings from the two paths are cross-checked for equality before any
// number is printed, as are 1-thread vs T-thread engine rankings.
//
// Part 3 is shard-count scaling: the index is partitioned into K shard
// files (round-robin), reloaded through the manifest, and the same query
// stream is answered via the sharded fan-out. In-process all shards share
// one machine, so the interesting numbers are the partition+write cost and
// the per-query fan-out overhead versus the unsharded index — the ranking
// cross-check (sharded must be bit-identical to unsharded) runs first.
//
// Part 4 is the serving boundary: the same shard layouts are served by
// real ShardServer instances on loopback TCP and queried through
// RpcShardClient, versus the in-process LocalShardClient fan-out. The
// delta is the true per-query cost of crossing the network — framing,
// sketch serialization, socket round trips — as a function of shard
// count. Rankings are cross-checked (RPC must be bit-identical to local)
// before any number is printed.
//
// Part 5 is concurrent serving: several router threads hammer the same
// RPC-backed sharded index at once, and the knobs under test are the
// client connection pool size (1, 2, 4 connections per shard — how many
// requests one router can keep in flight against one shard) and the
// replica count (1 vs 2 interchangeable servers per shard behind the
// replica-aware factory). Every concurrent ranking is cross-checked
// against the serial in-process answer before any number is printed.
//
// Part 6 is the JMRP v2 wire: request pipelining (many requests in
// flight on one connection, demuxed by request_id) against the v1
// one-request-per-round-trip baseline across concurrency levels and
// open-connection counts, and batched variant evaluation (one
// kBatchSearchRequest carrying N (k, min_join_size) variants against a
// connection-cached sketch) against N single-variant round trips.
//
// Part 7 is paged shard storage: the same shard layout built as "JMPS"
// paged files and served through PagedShardClient buffer pools of several
// sizes (starving, comfortable, everything-resident) against the
// whole-file in-memory baseline. Two costs are on trial: cold start
// (whole-file load deserializes every candidate, paged open reads header
// + directory only) and steady-state query latency as a function of the
// pool budget. Pool counters prove the starving configuration really
// evicted mid-query; rankings are cross-checked against the in-memory
// path before any number is printed.
//
// Part 9 races the flattened probe hot path against a verbatim replica of
// the pre-flattening per-candidate path (unordered_map probes, per-join
// sample/set builds) on an amortized-probe workload where almost nothing
// joins — reporting per-query cost, the batched and per-candidate
// speedups, and allocations per query via a global operator-new counter.
//
// Part 8 is the front tier: Router::Open over the simulated open-data
// repository (opendata_sim), hammered with a skewed-popularity query
// stream — a few hot query tables dominate, Zipf-style, exactly the shape
// that makes a result cache pay. Cache-hit latency is measured against a
// cache-disabled router on the same stream (every answer cross-checked
// bit-identical first), and an admission sub-drill saturates a
// max_pending=1 router until the gate sheds with structured kOverloaded +
// retry-after rejections. The repeat-query speedup is a hard gate: the
// bench aborts unless cached repeats run at least 5x faster.
//
// Part 10 is the mutable index: a router serves a deployment while an
// ingest coordinator appends delta batches, publishes a new manifest
// generation, and the router reloads mid-stream — per-query latency during
// that window is compared against steady state, and the post-reload
// ranking is cross-checked bit-identical to the full index before any
// number prints. A second drill measures the delta-overlay read cost as a
// function of delta size (0%, 25%, 50% of candidates living in JMDS
// sidecars instead of the base files).
//
// `--smoke` shrinks every dimension (tiny tables, capacity 64, one query
// batch) so the whole binary runs in well under a second; CI runs that
// mode as a ctest to keep this harness from rotting.
//
// `--json PATH` additionally writes the headline numbers as a flat JSON
// object — the machine-readable sibling of the printed report, for
// checked-in baselines and regression tracking.

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <thread>

#include <atomic>
#include <cmath>

#include <new>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/common/admission.h"
#include "src/common/random.h"
#include "src/core/join_mi.h"
#include "src/discovery/opendata_sim.h"
#include "src/discovery/paged_shard_index.h"
#include "src/discovery/replica_router.h"
#include "src/discovery/router.h"
#include "src/discovery/rpc_shard_client.h"
#include "src/discovery/search.h"
#include "src/discovery/shard_server.h"
#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/ingest/coordinator.h"
#include "src/ingest/generation.h"
#include "src/table/table.h"

// Global-new interposition for part 9's allocations-per-query counter:
// every heap allocation in this binary bumps one relaxed atomic. This is
// the only honest way to measure "the hot path no longer allocates" —
// sampling profilers miss small allocs, and counting at call sites misses
// the ones hiding inside containers.
static std::atomic<uint64_t> g_heap_allocs{0};

static void* CountedAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace joinmi {
namespace bench {
namespace {

struct BenchParams {
  size_t base_rows = 120000;
  size_t distinct_keys = 4000;
  size_t candidate_tables = 48;
  size_t candidate_rows = 4000;
  size_t top_k = 10;
  size_t sketch_capacity = 512;
  size_t min_join_size = 32;
  std::vector<size_t> query_counts = {1, 2, 4, 8};
  std::vector<size_t> shard_counts = {1, 2, 4, 8};
};

BenchParams SmokeParams() {
  BenchParams params;
  params.base_rows = 3000;
  params.distinct_keys = 200;
  params.candidate_tables = 6;
  params.candidate_rows = 500;
  params.sketch_capacity = 128;
  params.min_join_size = 16;
  params.query_counts = {2};
  params.shard_counts = {2};
  return params;
}

// Headline numbers for the optional --json report: insertion-ordered
// (name, value) pairs, written as one flat JSON object. Names are plain
// identifiers, so no escaping is needed.
std::vector<std::pair<std::string, double>>* g_metrics = nullptr;

void RecordMetric(const std::string& name, double value) {
  if (g_metrics != nullptr) g_metrics->emplace_back(name, value);
}

int WriteJsonReport(const std::string& path, size_t threads, bool smoke) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write JSON report to '%s': %s\n",
                 path.c_str(), std::strerror(errno));
    return 1;
  }
  std::fprintf(file, "{\n  \"bench\": \"topk_search\",\n");
  std::fprintf(file, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(file, "  \"threads\": %zu,\n", threads);
  std::fprintf(file, "  \"metrics\": {\n");
  for (size_t i = 0; i < g_metrics->size(); ++i) {
    std::fprintf(file, "    \"%s\": %.4f%s\n", (*g_metrics)[i].first.c_str(),
                 (*g_metrics)[i].second,
                 i + 1 < g_metrics->size() ? "," : "");
  }
  std::fprintf(file, "  }\n}\n");
  std::fclose(file);
  std::printf("\nwrote JSON report: %s (%zu metrics)\n", path.c_str(),
              g_metrics->size());
  return 0;
}

std::string KeyName(uint64_t i) { return "key" + std::to_string(i); }

std::shared_ptr<Table> MakeBaseTable(const BenchParams& params, Rng* rng) {
  std::vector<std::string> keys;
  std::vector<int64_t> targets;
  keys.reserve(params.base_rows);
  targets.reserve(params.base_rows);
  for (size_t i = 0; i < params.base_rows; ++i) {
    const uint64_t k = rng->NextBounded(params.distinct_keys);
    keys.push_back(KeyName(k));
    targets.push_back(static_cast<int64_t>(k % 16));
  }
  return *Table::FromColumns({{"K", Column::MakeString(std::move(keys))},
                              {"Y", Column::MakeInt64(std::move(targets))}});
}

TableRepository MakeRepository(const BenchParams& params, Rng* rng) {
  TableRepository repository;
  for (size_t t = 0; t < params.candidate_tables; ++t) {
    std::vector<std::string> keys;
    std::vector<int64_t> values;
    keys.reserve(params.candidate_rows);
    values.reserve(params.candidate_rows);
    // Candidates range from perfectly informative (t = 0 copies the target
    // function) to pure noise, so the top-k ranking is non-trivial.
    const uint64_t noise = 1 + static_cast<uint64_t>(t);
    for (size_t i = 0; i < params.candidate_rows; ++i) {
      const uint64_t k = rng->NextBounded(params.distinct_keys);
      keys.push_back(KeyName(k));
      const int64_t signal = static_cast<int64_t>(k % 16);
      const int64_t jitter = static_cast<int64_t>(rng->NextBounded(noise));
      values.push_back(signal + jitter);
    }
    repository
        .AddTable("cand" + std::to_string(t),
                  *Table::FromColumns(
                      {{"K", Column::MakeString(std::move(keys))},
                       {"V", Column::MakeInt64(std::move(values))}}))
        .Abort("adding candidate table");
  }
  return repository;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

JoinMIConfig MakeJoinConfig(const BenchParams& params) {
  JoinMIConfig config;
  config.sketch_capacity = params.sketch_capacity;
  config.min_join_size = params.min_join_size;
  return config;
}

// The pre-engine API: one independent SketchJoinMI per candidate pair,
// keeping the best k by (mi desc, enumeration order) like the engine does.
double RunNaiveSerial(const BenchParams& params, const Table& base,
                      const TableRepository& repository) {
  const JoinMIConfig config = MakeJoinConfig(params);
  const auto start = std::chrono::steady_clock::now();
  size_t evaluated = 0;
  double best = 0.0;
  for (const ColumnPairRef& ref : repository.ExtractColumnPairs()) {
    auto table = repository.GetTable(ref.table_name);
    if (!table.ok()) continue;
    auto estimate =
        SketchJoinMI(base, **table,
                     {"K", "Y", ref.key_column, ref.value_column}, config);
    if (!estimate.ok()) continue;
    ++evaluated;
    if (estimate->mi > best) best = estimate->mi;
  }
  const double ms = MillisSince(start);
  std::printf("naive serial : %8.1f ms  (%zu candidates evaluated, best MI "
              "%.3f)\n",
              ms, evaluated, best);
  return ms;
}

double RunEngine(const BenchParams& params, const Table& base,
                 const TableRepository& repository, size_t num_threads,
                 TopKSearchResult* result_out) {
  SearchConfig config;
  config.num_threads = num_threads;
  config.join_config = MakeJoinConfig(params);
  const auto start = std::chrono::steady_clock::now();
  auto result = TopKJoinMISearch(base, {"K", "Y"}, repository, params.top_k,
                                 config);
  const double ms = MillisSince(start);
  result.status().Abort("TopKJoinMISearch");
  std::printf("engine x%-4zu: %8.1f ms  (%zu evaluated, %zu skipped, %zu "
              "errors, top hit %s MI %.3f)\n",
              num_threads, ms, result->num_evaluated, result->num_skipped,
              result->num_errors,
              result->hits.empty()
                  ? "-"
                  : result->hits[0].candidate.table_name.c_str(),
              result->hits.empty() ? 0.0 : result->hits[0].estimate.mi);
  if (result_out != nullptr) *result_out = std::move(*result);
  return ms;
}

void ExpectSameRanking(const TopKSearchResult& a, const TopKSearchResult& b,
                       const char* what) {
  bool same = a.hits.size() == b.hits.size();
  for (size_t i = 0; same && i < a.hits.size(); ++i) {
    same = a.hits[i].candidate.table_name == b.hits[i].candidate.table_name &&
           a.hits[i].candidate.value_column == b.hits[i].candidate.value_column &&
           a.hits[i].estimate.mi == b.hits[i].estimate.mi;
  }
  if (!same) {
    std::fprintf(stderr, "FATAL: %s rankings disagree\n", what);
    std::abort();
  }
}

// Part 2: sketch-once / query-many amortization.
void RunIndexAmortization(const BenchParams& params,
                          const TableRepository& repository, size_t threads,
                          Rng* rng) {
  const JoinMIConfig config = MakeJoinConfig(params);
  const size_t max_queries = *std::max_element(params.query_counts.begin(),
                                               params.query_counts.end());
  std::vector<std::shared_ptr<Table>> queries;
  queries.reserve(max_queries);
  for (size_t q = 0; q < max_queries; ++q) {
    queries.push_back(MakeBaseTable(params, rng));
  }

  std::printf("\n== sketch-once / query-many: per-query sketching vs "
              "index-backed probing (engine x%zu) ==\n",
              threads);
  auto build_start = std::chrono::steady_clock::now();
  SketchIndex index(config);
  auto indexed = index.IndexRepository(repository);
  indexed.status().Abort("building the sketch index");
  const double build_ms = MillisSince(build_start);
  std::printf("index build  : %8.1f ms  (%zu candidate sketches, capacity "
              "%zu)\n",
              build_ms, *indexed, config.sketch_capacity);

  // Correctness gate: at matched config the index-backed ranking must be
  // identical to the per-query-sketching ranking.
  {
    SearchConfig search_config;
    search_config.num_threads = threads;
    search_config.join_config = config;
    auto via_repo = TopKJoinMISearch(*queries[0], {"K", "Y"}, repository,
                                     params.top_k, search_config);
    via_repo.status().Abort("repository-path search");
    auto via_index = TopKJoinMISearch(*queries[0], {"K", "Y"}, index,
                                      params.top_k, threads);
    via_index.status().Abort("index-path search");
    ExpectSameRanking(*via_repo, *via_index, "repository-path and index-path");
  }

  for (size_t num_queries : params.query_counts) {
    SearchConfig search_config;
    search_config.num_threads = threads;
    search_config.join_config = config;
    auto sketch_start = std::chrono::steady_clock::now();
    for (size_t q = 0; q < num_queries; ++q) {
      TopKJoinMISearch(*queries[q], {"K", "Y"}, repository, params.top_k,
                       search_config)
          .status()
          .Abort("per-query-sketching search");
    }
    const double sketch_ms = MillisSince(sketch_start);

    auto probe_start = std::chrono::steady_clock::now();
    for (size_t q = 0; q < num_queries; ++q) {
      TopKJoinMISearch(*queries[q], {"K", "Y"}, index, params.top_k, threads)
          .status()
          .Abort("index-backed search");
    }
    const double probe_ms = MillisSince(probe_start);
    // The index path's total cost includes its one-time build.
    const double index_total = build_ms + probe_ms;
    std::printf("Q=%-3zu per-query sketching %8.1f ms | index build+probe "
                "%6.1f+%6.1f = %8.1f ms | %s %.2fx\n",
                num_queries, sketch_ms, build_ms, probe_ms, index_total,
                index_total <= sketch_ms ? "index ahead" : "index behind",
                sketch_ms / index_total);
  }
  std::printf("(per-probe marginal cost: the probe column divided by Q — "
              "the build never recurs)\n");
}

// Part 3: shard-count scaling of the fan-out search.
void RunShardScaling(const BenchParams& params,
                     const TableRepository& repository, size_t threads,
                     Rng* rng) {
  const JoinMIConfig config = MakeJoinConfig(params);
  SketchIndex index(config);
  index.IndexRepository(repository).status().Abort("building the index");
  auto query_table = MakeBaseTable(params, rng);
  const size_t queries = 4;

  std::printf("\n== shard-count scaling: unsharded index vs manifest-driven "
              "fan-out (engine x%zu, %zu queries) ==\n",
              threads, queries);
  auto unsharded_start = std::chrono::steady_clock::now();
  TopKSearchResult unsharded;
  for (size_t q = 0; q < queries; ++q) {
    auto result = TopKJoinMISearch(*query_table, {"K", "Y"}, index,
                                   params.top_k, threads);
    result.status().Abort("unsharded index search");
    unsharded = std::move(*result);
  }
  const double unsharded_ms = MillisSince(unsharded_start);
  std::printf("unsharded    : %8.1f ms  (%zu candidates)\n", unsharded_ms,
              index.size());

  const std::string shard_root =
      "/tmp/joinmi_bench_shards." + std::to_string(getpid());
  for (size_t num_shards : params.shard_counts) {
    const std::string dir = shard_root + "/" + std::to_string(num_shards);
    auto build_start = std::chrono::steady_clock::now();
    auto manifest_path = BuildShards(index, num_shards,
                                     ShardPartitionPolicy::kRoundRobin, dir);
    manifest_path.status().Abort("partitioning the index");
    auto sharded = ShardedSketchIndex::Load(*manifest_path);
    sharded.status().Abort("loading the sharded index");
    const double build_ms = MillisSince(build_start);

    auto probe_start = std::chrono::steady_clock::now();
    TopKSearchResult via_shards;
    for (size_t q = 0; q < queries; ++q) {
      auto result = TopKJoinMISearch(*query_table, {"K", "Y"}, *sharded,
                                     params.top_k, threads);
      result.status().Abort("sharded search");
      via_shards = std::move(*result);
    }
    const double probe_ms = MillisSince(probe_start);
    ExpectSameRanking(unsharded, via_shards, "unsharded and sharded");
    std::printf("K=%-3zu partition+write+load %8.1f ms | fan-out search "
                "%8.1f ms | overhead vs unsharded %.2fx\n",
                num_shards, build_ms, probe_ms, probe_ms / unsharded_ms);
  }
  std::filesystem::remove_all(shard_root);
  std::printf("(one process hosts every shard here, so the fan-out column "
              "is pure orchestration overhead; the win arrives when shards "
              "become servers)\n");
}

// Part 4: the cost of the process boundary — loopback RPC vs in-process
// shard fan-out for the same shard layouts.
void RunRpcServing(const BenchParams& params,
                   const TableRepository& repository, size_t threads,
                   Rng* rng) {
  const JoinMIConfig config = MakeJoinConfig(params);
  SketchIndex index(config);
  index.IndexRepository(repository).status().Abort("building the index");
  auto query_table = MakeBaseTable(params, rng);
  const size_t queries = 4;

  std::printf("\n== serving boundary: loopback RPC shard servers vs "
              "in-process fan-out (engine x%zu, %zu queries) ==\n",
              threads, queries);
  const std::string shard_root =
      "/tmp/joinmi_bench_rpc_shards." + std::to_string(getpid());
  for (size_t num_shards : params.shard_counts) {
    const std::string dir = shard_root + "/" + std::to_string(num_shards);
    auto manifest_path = BuildShards(index, num_shards,
                                     ShardPartitionPolicy::kRoundRobin, dir);
    manifest_path.status().Abort("partitioning the index");
    auto local = ShardedSketchIndex::Load(*manifest_path);
    local.status().Abort("loading the local sharded index");

    // One real server per shard on an ephemeral loopback port.
    std::vector<std::unique_ptr<ShardServer>> servers;
    std::vector<ShardEndpoint> endpoints;
    for (size_t s = 0; s < num_shards; ++s) {
      ShardServerOptions options;
      options.num_workers = 2;
      auto server = ShardServer::Create(*manifest_path, s, options);
      server.status().Abort("creating a shard server");
      (*server)->Start().Abort("starting a shard server");
      endpoints.push_back(ShardEndpoint{"127.0.0.1", (*server)->port()});
      servers.push_back(std::move(*server));
    }
    auto remote = ShardedSketchIndex::Load(
        *manifest_path, RpcShardClient::Factory(endpoints));
    remote.status().Abort("assembling the RPC sharded index");

    // Correctness gate first: the wire must not change a single bit.
    {
      auto via_local =
          TopKJoinMISearch(*query_table, {"K", "Y"}, *local,
                           params.top_k, threads);
      via_local.status().Abort("local sharded search");
      auto via_rpc =
          TopKJoinMISearch(*query_table, {"K", "Y"}, *remote,
                           params.top_k, threads);
      via_rpc.status().Abort("RPC sharded search");
      ExpectSameRanking(*via_local, *via_rpc, "in-process and RPC");
    }

    auto local_start = std::chrono::steady_clock::now();
    for (size_t q = 0; q < queries; ++q) {
      TopKJoinMISearch(*query_table, {"K", "Y"}, *local, params.top_k,
                       threads)
          .status()
          .Abort("local sharded search");
    }
    const double local_ms = MillisSince(local_start) / queries;

    auto rpc_start = std::chrono::steady_clock::now();
    for (size_t q = 0; q < queries; ++q) {
      TopKJoinMISearch(*query_table, {"K", "Y"}, *remote, params.top_k,
                       threads)
          .status()
          .Abort("RPC sharded search");
    }
    const double rpc_ms = MillisSince(rpc_start) / queries;

    std::printf("K=%-3zu in-process %8.2f ms/query | loopback RPC %8.2f "
                "ms/query | boundary overhead %+7.2f ms (%.2fx)\n",
                num_shards, local_ms, rpc_ms, rpc_ms - local_ms,
                local_ms > 0 ? rpc_ms / local_ms : 0.0);
    for (auto& server : servers) server->Stop();
  }
  std::filesystem::remove_all(shard_root);
  std::printf("(same shard files, same merge — the delta is framing, "
              "sketch serialization, and socket round trips; amortize it "
              "with bigger candidate universes per shard)\n");
}

// Part 5: concurrent router throughput vs connection pool size and vs
// replica count — the serving-tier concurrency knobs.
void RunConcurrentServing(const BenchParams& params,
                          const TableRepository& repository, bool smoke,
                          Rng* rng) {
  const JoinMIConfig config = MakeJoinConfig(params);
  SketchIndex index(config);
  index.IndexRepository(repository).status().Abort("building the index");
  auto query_table = MakeBaseTable(params, rng);
  const size_t num_shards = 2;
  const size_t router_threads = 4;
  const size_t queries_per_thread = smoke ? 2 : 8;
  const size_t total_queries = router_threads * queries_per_thread;

  std::printf("\n== concurrent serving: %zu router threads x %zu queries, "
              "%zu shards — pool size and replica count ==\n",
              router_threads, queries_per_thread, num_shards);
  const std::string shard_root =
      "/tmp/joinmi_bench_pool_shards." + std::to_string(getpid());
  auto manifest_path = BuildShards(index, num_shards,
                                   ShardPartitionPolicy::kRoundRobin,
                                   shard_root);
  manifest_path.status().Abort("partitioning the index");
  auto local = ShardedSketchIndex::Load(*manifest_path);
  local.status().Abort("loading the local sharded index");
  auto reference = TopKJoinMISearch(*query_table, {"K", "Y"}, *local,
                                    params.top_k, 1);
  reference.status().Abort("serial reference search");

  // Drives `total_queries` through the router from `router_threads`
  // threads, cross-checking every ranking, and returns total wall ms.
  auto drive = [&](const ShardedSketchIndex& router) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (size_t t = 0; t < router_threads; ++t) {
      threads.emplace_back([&] {
        for (size_t q = 0; q < queries_per_thread; ++q) {
          auto result = TopKJoinMISearch(*query_table, {"K", "Y"}, router,
                                         params.top_k, 1);
          result.status().Abort("concurrent RPC search");
          ExpectSameRanking(*reference, *result,
                            "serial local and concurrent RPC");
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    return MillisSince(start);
  };

  // One row of servers serves every pool size (the knob is client-side).
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<ShardEndpoint> endpoints;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardServerOptions options;
    options.num_workers = 8;
    auto server = ShardServer::Create(*manifest_path, s, options);
    server.status().Abort("creating a shard server");
    (*server)->Start().Abort("starting a shard server");
    endpoints.push_back(ShardEndpoint{"127.0.0.1", (*server)->port()});
    servers.push_back(std::move(*server));
  }
  for (size_t pool_size : {1u, 2u, 4u}) {
    RpcClientOptions options;
    options.pool_size = pool_size;
    auto remote = ShardedSketchIndex::Load(
        *manifest_path, RpcShardClient::Factory(endpoints, options));
    remote.status().Abort("assembling the RPC sharded index");
    const double ms = drive(*remote);
    std::printf("pool=%zu conn/shard : %8.2f ms total | %8.2f ms/query | "
                "%8.0f queries/s\n",
                pool_size, ms, ms / total_queries,
                total_queries * 1000.0 / ms);
  }

  // Replica sweep: a second interchangeable server per shard joins, and
  // the replica-aware factory round-robins across both.
  for (size_t replicas : {1u, 2u}) {
    std::vector<std::vector<ShardEndpoint>> replica_map(num_shards);
    std::vector<std::unique_ptr<ShardServer>> extra;
    for (size_t s = 0; s < num_shards; ++s) {
      replica_map[s].push_back(endpoints[s]);
      for (size_t r = 1; r < replicas; ++r) {
        ShardServerOptions options;
        options.num_workers = 8;
        auto server = ShardServer::Create(*manifest_path, s, options);
        server.status().Abort("creating a replica server");
        (*server)->Start().Abort("starting a replica server");
        replica_map[s].push_back(
            ShardEndpoint{"127.0.0.1", (*server)->port()});
        extra.push_back(std::move(*server));
      }
    }
    ReplicaRouterOptions options;
    options.rpc.pool_size = 2;
    auto remote = ShardedSketchIndex::Load(
        *manifest_path,
        ReplicaShardClient::Factory(replica_map, options));
    remote.status().Abort("assembling the replicated sharded index");
    const double ms = drive(*remote);
    std::printf("replicas=%zu /shard  : %8.2f ms total | %8.2f ms/query | "
                "%8.0f queries/s\n",
                replicas, ms, ms / total_queries,
                total_queries * 1000.0 / ms);
    for (auto& server : extra) server->Stop();
  }
  for (auto& server : servers) server->Stop();
  std::filesystem::remove_all(shard_root);
  std::printf("(pool size bounds one router's in-flight requests per "
              "shard; replicas add whole servers — on one host both mostly "
              "buy concurrency headroom, across hosts they buy real "
              "hardware)\n");
}

// Part 6: the JMRP v2 wire upgrades — request pipelining on one
// connection and batched variant evaluation against a connection-cached
// sketch — against the v1 one-request-per-round-trip baseline.
void RunBatchedPipelinedServing(const BenchParams& params,
                                const TableRepository& repository,
                                bool smoke, Rng* rng) {
  const JoinMIConfig config = MakeJoinConfig(params);
  SketchIndex index(config);
  index.IndexRepository(repository).status().Abort("building the index");
  auto query_table = MakeBaseTable(params, rng);
  const size_t num_shards = 2;

  const std::string shard_root =
      "/tmp/joinmi_bench_pipeline_shards." + std::to_string(getpid());
  auto manifest_path = BuildShards(index, num_shards,
                                   ShardPartitionPolicy::kRoundRobin,
                                   shard_root);
  manifest_path.status().Abort("partitioning the index");
  auto local = ShardedSketchIndex::Load(*manifest_path);
  local.status().Abort("loading the local sharded index");
  auto reference = TopKJoinMISearch(*query_table, {"K", "Y"}, *local,
                                    params.top_k, 1);
  reference.status().Abort("serial reference search");

  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<ShardEndpoint> endpoints;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardServerOptions options;
    options.num_workers = 8;
    auto server = ShardServer::Create(*manifest_path, s, options);
    server.status().Abort("creating a shard server");
    (*server)->Start().Abort("starting a shard server");
    endpoints.push_back(ShardEndpoint{"127.0.0.1", (*server)->port()});
    servers.push_back(std::move(*server));
  }

  // Drives `concurrency` client threads through the router,
  // cross-checking every ranking, and returns total wall ms.
  auto drive = [&](const ShardedSketchIndex& router, size_t concurrency,
                   size_t queries_each) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (size_t t = 0; t < concurrency; ++t) {
      threads.emplace_back([&] {
        for (size_t q = 0; q < queries_each; ++q) {
          auto result = TopKJoinMISearch(*query_table, {"K", "Y"}, router,
                                         params.top_k, 1);
          result.status().Abort("pipelined RPC search");
          ExpectSameRanking(*reference, *result,
                            "serial local and pipelined RPC");
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    return MillisSince(start);
  };

  const size_t queries_each = smoke ? 2 : 4;
  std::printf("\n== JMRP v2: pipelining and batching vs the v1 wire "
              "(%zu shards, 1 connection/shard unless noted) ==\n",
              num_shards);

  // (a) Queries/sec vs concurrent query count on ONE connection per
  // shard: the v1 wire serializes whole exchanges on the socket, the v2
  // wire interleaves requests and demuxes responses by request_id.
  for (size_t concurrency : {1u, 8u, 16u}) {
    if (smoke && concurrency > 8) break;
    double wall_ms[2] = {0.0, 0.0};
    for (uint32_t max_version : {1u, 2u}) {
      RpcClientOptions options;
      options.pool_size = 1;
      options.max_protocol_version = max_version;
      auto remote = ShardedSketchIndex::Load(
          *manifest_path, RpcShardClient::Factory(endpoints, options));
      remote.status().Abort("assembling the RPC sharded index");
      wall_ms[max_version - 1] = drive(*remote, concurrency, queries_each);
    }
    const double total = static_cast<double>(concurrency * queries_each);
    std::printf("inflight=%-3zu : v1 %8.0f queries/s | v2 pipelined "
                "%8.0f queries/s (%.2fx)\n",
                concurrency, total * 1000.0 / wall_ms[0],
                total * 1000.0 / wall_ms[1], wall_ms[0] / wall_ms[1]);
  }

  // (b) Open-connection sweep under fixed concurrency: more sockets vs
  // deeper pipelines on fewer sockets.
  const size_t sweep_concurrency = smoke ? 4 : 8;
  for (size_t pool : {1u, 2u, 4u}) {
    RpcClientOptions options;
    options.pool_size = pool;
    auto remote = ShardedSketchIndex::Load(
        *manifest_path, RpcShardClient::Factory(endpoints, options));
    remote.status().Abort("assembling the RPC sharded index");
    const double ms = drive(*remote, sweep_concurrency, queries_each);
    std::printf("conns=%zu/shard: v2 %8.0f queries/s at inflight=%zu\n",
                pool, sweep_concurrency * queries_each * 1000.0 / ms,
                sweep_concurrency);
  }

  // (c) Batch size: N (k, min_join_size) variants of one sketched query
  // as N single-variant frames vs one kBatchSearchRequest per shard. The
  // sketch is uploaded once per connection either way; the batch saves
  // the per-variant round trips.
  {
    RpcClientOptions options;
    options.pool_size = 1;
    auto remote = ShardedSketchIndex::Load(
        *manifest_path, RpcShardClient::Factory(endpoints, options));
    remote.status().Abort("assembling the RPC sharded index");
    auto query = JoinMIQuery::Create(*query_table, "K", "Y", config);
    query.status().Abort("sketching the bench query");
    for (size_t batch : {1u, 4u, 16u}) {
      if (smoke && batch > 4) break;
      std::vector<ShardSearchVariant> variants;
      for (size_t v = 0; v < batch; ++v) {
        variants.push_back(
            ShardSearchVariant{params.top_k, config.min_join_size + v});
      }
      const auto single_start = std::chrono::steady_clock::now();
      std::vector<ShardSearchResult> singles;
      for (const auto& variant : variants) {
        auto result = remote->SearchVariants(*query, {variant}, 1);
        result.status().Abort("single-variant search");
        singles.push_back(std::move(result->front()));
      }
      const double single_ms = MillisSince(single_start);
      const auto batch_start = std::chrono::steady_clock::now();
      auto batched = remote->SearchVariants(*query, variants, 1);
      batched.status().Abort("batched variant search");
      const double batch_ms = MillisSince(batch_start);
      // The batch must answer exactly what the singles answered.
      if (batched->size() != singles.size()) {
        Status::UnknownError("batched variant count mismatch").Abort("bench");
      }
      for (size_t v = 0; v < singles.size(); ++v) {
        if ((*batched)[v].hits.size() != singles[v].hits.size()) {
          Status::UnknownError("batched ranking diverged from singles")
              .Abort("bench");
        }
        for (size_t h = 0; h < singles[v].hits.size(); ++h) {
          if ((*batched)[v].hits[h].global_index !=
                  singles[v].hits[h].global_index ||
              (*batched)[v].hits[h].estimate.mi !=
                  singles[v].hits[h].estimate.mi) {
            Status::UnknownError("batched ranking diverged from singles")
                .Abort("bench");
          }
        }
      }
      std::printf("batch=%-3zu : %2zu round trips %8.2f ms | one batch "
                  "%8.2f ms (%.2fx)\n",
                  batch, batch, single_ms, batch_ms,
                  batch_ms > 0 ? single_ms / batch_ms : 0.0);
    }
  }

  for (auto& server : servers) server->Stop();
  std::filesystem::remove_all(shard_root);
  std::printf("(one connection now holds many requests in flight and many "
              "variants per frame; the sketch crosses the wire once per "
              "connection, not once per request)\n");
}

// Part 7: paged shard storage vs whole-file in-memory shards — cold
// start and query latency across buffer-pool budgets.
void RunPagedStorage(const BenchParams& params,
                     const TableRepository& repository, size_t threads,
                     bool smoke, Rng* rng) {
  const JoinMIConfig config = MakeJoinConfig(params);
  SketchIndex index(config);
  index.IndexRepository(repository).status().Abort("building the index");
  auto query_table = MakeBaseTable(params, rng);
  const size_t queries = 4;
  const size_t num_shards = 2;
  // Small pages in smoke mode so even its tiny shards span enough pages
  // for the starving pool to actually evict.
  const uint32_t page_size = smoke ? 1024 : 4096;
  const std::vector<size_t> pool_sizes = smoke
                                             ? std::vector<size_t>{2, 64, 65536}
                                             : std::vector<size_t>{4, 64, 65536};

  std::printf("\n== paged shard storage: JMPS + buffer pool vs whole-file "
              "in-memory shards (%zu shards, %u-byte pages, engine x%zu) "
              "==\n",
              num_shards, page_size, threads);
  const std::string shard_root =
      "/tmp/joinmi_bench_paged_shards." + std::to_string(getpid());

  auto whole_manifest =
      BuildShards(index, num_shards, ShardPartitionPolicy::kRoundRobin,
                  shard_root + "/whole");
  whole_manifest.status().Abort("partitioning (whole-file)");
  ShardBuildOptions paged_build;
  paged_build.format = ShardFileFormat::kPaged;
  paged_build.page_size = page_size;
  auto paged_manifest =
      BuildShards(index, num_shards, ShardPartitionPolicy::kRoundRobin,
                  shard_root + "/paged", paged_build);
  paged_manifest.status().Abort("partitioning (paged)");

  // Whole-file baseline: cold start deserializes every candidate; queries
  // probe fully materialized in-memory indices.
  auto whole_start = std::chrono::steady_clock::now();
  auto whole = ShardedSketchIndex::Load(*whole_manifest);
  whole.status().Abort("loading whole-file shards");
  const double whole_load_ms = MillisSince(whole_start);
  TopKSearchResult reference;
  {
    auto result = TopKJoinMISearch(*query_table, {"K", "Y"}, *whole,
                                   params.top_k, threads);
    result.status().Abort("whole-file sharded search");
    reference = std::move(*result);
  }
  auto whole_query_start = std::chrono::steady_clock::now();
  for (size_t q = 0; q < queries; ++q) {
    TopKJoinMISearch(*query_table, {"K", "Y"}, *whole, params.top_k, threads)
        .status()
        .Abort("whole-file sharded search");
  }
  const double whole_query_ms = MillisSince(whole_query_start) / queries;
  std::printf("whole-file   : cold start %8.2f ms | %8.2f ms/query "
              "(everything deserialized up front)\n",
              whole_load_ms, whole_query_ms);
  RecordMetric("paged_bench_whole_load_ms", whole_load_ms);
  RecordMetric("paged_bench_whole_query_ms", whole_query_ms);

  auto manifest = ReadManifestFile(*paged_manifest);
  manifest.status().Abort("reading the paged manifest");
  const std::string paged_dir = shard_root + "/paged";
  for (size_t pool_pages : pool_sizes) {
    // Open the typed clients directly so the pool counters stay
    // observable behind the ShardedSketchIndex surface.
    PagedShardClient::Options options;
    options.pool_pages = pool_pages;
    options.prepared_cache_entries = 0;  // measure the pool, not the cache
    std::vector<const PagedShardClient*> typed;
    std::vector<std::unique_ptr<ShardClient>> clients;
    uint64_t startup_bytes = 0;
    uint64_t file_bytes = 0;
    auto open_start = std::chrono::steady_clock::now();
    for (const ShardManifestEntry& entry : manifest->shards) {
      auto client = PagedShardClient::Open(paged_dir + "/" + entry.path,
                                           entry.global_indices, options);
      client.status().Abort("opening a paged shard");
      typed.push_back(client->get());
      startup_bytes += (*client)->open_stats().startup_bytes_read;
      file_bytes += (*client)->open_stats().file_size;
      clients.push_back(std::move(*client));
    }
    ShardManifest manifest_copy = *manifest;
    auto paged = ShardedSketchIndex::Create(std::move(manifest_copy),
                                            std::move(clients));
    paged.status().Abort("assembling the paged sharded index");
    const double open_ms = MillisSince(open_start);

    // Correctness gate: identical rankings even when the pool starves.
    {
      auto result = TopKJoinMISearch(*query_table, {"K", "Y"}, *paged,
                                     params.top_k, threads);
      result.status().Abort("paged sharded search");
      ExpectSameRanking(reference, *result, "whole-file and paged");
    }
    auto query_start = std::chrono::steady_clock::now();
    for (size_t q = 0; q < queries; ++q) {
      TopKJoinMISearch(*query_table, {"K", "Y"}, *paged, params.top_k,
                       threads)
          .status()
          .Abort("paged sharded search");
    }
    const double query_ms = MillisSince(query_start) / queries;

    storage::BufferPoolStats stats;
    for (const PagedShardClient* client : typed) {
      const storage::BufferPoolStats shard_stats = client->pool_stats();
      stats.hits += shard_stats.hits;
      stats.misses += shard_stats.misses;
      stats.evictions += shard_stats.evictions;
    }
    if (pool_pages == pool_sizes.front() && stats.evictions == 0) {
      std::fprintf(stderr, "FATAL: the starving pool (%zu pages) never "
                   "evicted — the bench is not exercising eviction\n",
                   pool_pages);
      std::abort();
    }
    std::printf("pool=%-6zu  : cold start %8.2f ms (read %llu of %llu "
                "bytes) | %8.2f ms/query | %llu hits %llu misses %llu "
                "evictions\n",
                pool_pages, open_ms,
                static_cast<unsigned long long>(startup_bytes),
                static_cast<unsigned long long>(file_bytes), query_ms,
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.evictions));
    const std::string suffix = std::to_string(pool_pages);
    RecordMetric("paged_bench_open_ms_pool_" + suffix, open_ms);
    RecordMetric("paged_bench_query_ms_pool_" + suffix, query_ms);
    RecordMetric("paged_bench_evictions_pool_" + suffix,
                 static_cast<double>(stats.evictions));
  }
  RecordMetric("paged_bench_queries", static_cast<double>(queries));
  std::filesystem::remove_all(shard_root);
  std::printf("(paged cold start is header + directory per shard no matter "
              "the shard size; the starving pool trades latency for a hard "
              "memory ceiling, the big pool converges on in-memory speed "
              "after first touch)\n");
}

// Part 8: the front tier — Router result cache under a skewed-popularity
// workload over the simulated open-data repository, and the admission
// gate under deliberate saturation.
void RunFrontTier(const BenchParams& params, bool smoke, Rng* rng) {
  OpenDataParams od = NYCLikeParams();
  od.num_pairs = smoke ? 12 : 16;
  od.num_families = 4;
  if (smoke) {
    od.left_rows = 800;
    od.right_rows = 400;
  }
  auto pairs = GenerateOpenDataCollection(od);
  pairs.status().Abort("generating the open-data collection");

  TableRepository repository;
  for (size_t i = 0; i < pairs->size(); ++i) {
    repository
        .AddTable("dataset_" + std::to_string(i), (*pairs)[i].cand)
        .Abort("registering an open-data table");
  }
  JoinMIConfig config;
  config.sketch_capacity = params.sketch_capacity;
  config.min_join_size = 16;
  config.aggregation = AggKind::kFirst;  // mixed-type repository
  SketchIndex index(config);
  index.IndexRepository(repository).status().Abort(
      "indexing the open-data repository");

  const std::string shard_root =
      "/tmp/joinmi_bench_front_tier." + std::to_string(getpid());
  auto manifest_path = BuildShards(index, 2,
                                   ShardPartitionPolicy::kRoundRobin,
                                   shard_root);
  manifest_path.status().Abort("partitioning the open-data index");

  // Distinct query tables: the train sides of the first few generated
  // pairs, each sketched ONCE — clients hold their sketch across repeats,
  // which is exactly why the v2 wire uploads it once per connection.
  const size_t distinct = std::min<size_t>(smoke ? 3 : 6, pairs->size());
  std::vector<JoinMIQuery> queries;
  for (size_t i = 0; i < distinct; ++i) {
    auto query = JoinMIQuery::Create(*(*pairs)[i].train, "K", "Y", config);
    query.status().Abort("sketching a workload query table");
    queries.push_back(std::move(*query));
  }

  // Zipf-ish popularity: rank r draws with weight 1/(r+1)^1.2, so the
  // hottest table dominates the stream — the shape that makes a result
  // cache pay. The schedule is drawn once and replayed identically
  // against both routers.
  const size_t requests = smoke ? 24 : 120;
  std::vector<double> cumulative(distinct, 0.0);
  double total_weight = 0.0;
  for (size_t r = 0; r < distinct; ++r) {
    total_weight += 1.0 / std::pow(static_cast<double>(r + 1), 1.2);
    cumulative[r] = total_weight;
  }
  std::vector<size_t> schedule;
  schedule.reserve(requests);
  for (size_t i = 0; i < requests; ++i) {
    const double u = total_weight *
                     (static_cast<double>(rng->NextBounded(1u << 20)) /
                      static_cast<double>(1u << 20));
    size_t pick = 0;
    while (pick + 1 < distinct && cumulative[pick] < u) ++pick;
    schedule.push_back(pick);
  }

  RouterOptions cached_options;
  cached_options.manifest_path = *manifest_path;
  auto cached = Router::Open(cached_options);
  cached.status().Abort("opening the cached front-tier router");
  RouterOptions uncached_options = cached_options;
  uncached_options.cache_entries = 0;
  auto uncached = Router::Open(uncached_options);
  uncached.status().Abort("opening the cache-disabled router");

  std::printf("\n== front tier: Router cache under a skewed workload "
              "(%zu requests over %zu hot query tables, 2 shards) ==\n",
              requests, distinct);

  // Correctness gate (and cache warmup): per distinct query, the cached
  // and cache-disabled routers must answer bit-identically.
  for (size_t i = 0; i < distinct; ++i) {
    auto via_cached = (*cached)->SearchQuery(queries[i], params.top_k, 1,
                                             ShardQueryMode::kStrict);
    via_cached.status().Abort("cached front-tier search");
    auto via_uncached = (*uncached)->SearchQuery(queries[i], params.top_k,
                                                 1, ShardQueryMode::kStrict);
    via_uncached.status().Abort("cache-disabled front-tier search");
    ExpectSameRanking(*via_cached, *via_uncached,
                      "cached and cache-disabled");
  }

  auto replay = [&](Router& router) {
    const auto start = std::chrono::steady_clock::now();
    for (size_t pick : schedule) {
      router
          .SearchQuery(queries[pick], params.top_k, 1,
                       ShardQueryMode::kStrict)
          .status()
          .Abort("front-tier workload query");
    }
    return MillisSince(start);
  };
  const double uncached_ms = replay(**uncached);
  const uint64_t hits_before = (*cached)->cache_stats().hits;
  const double cached_ms = replay(**cached);
  const RouterCacheStats stats = (*cached)->cache_stats();
  const double hit_rate =
      static_cast<double>(stats.hits - hits_before) /
      static_cast<double>(requests);
  const double speedup = cached_ms > 0 ? uncached_ms / cached_ms : 0.0;
  std::printf("uncached     : %8.2f ms total | %8.3f ms/query (full "
              "fan-out every request)\n",
              uncached_ms, uncached_ms / requests);
  std::printf("cached       : %8.2f ms total | %8.3f ms/query | hit rate "
              "%.2f | repeat speedup %.1fx\n",
              cached_ms, cached_ms / requests, hit_rate, speedup);
  RecordMetric("part8_requests", static_cast<double>(requests));
  RecordMetric("part8_distinct_queries", static_cast<double>(distinct));
  RecordMetric("part8_uncached_ms_per_query", uncached_ms / requests);
  RecordMetric("part8_cached_ms_per_query", cached_ms / requests);
  RecordMetric("part8_cache_hit_rate", hit_rate);
  RecordMetric("part8_repeat_speedup", speedup);
  if (speedup < 5.0) {
    std::fprintf(stderr, "FATAL: cached repeats only %.1fx faster than "
                 "recomputation (acceptance floor is 5x)\n", speedup);
    std::abort();
  }
  if (hit_rate < 1.0) {
    std::fprintf(stderr, "FATAL: warmed cache missed (%0.2f hit rate) — "
                 "the cache key is unstable across identical queries\n",
                 hit_rate);
    std::abort();
  }

  // Admission sub-drill: a max_pending=1, cache-off router under
  // concurrent fire must shed with the structured rejection. Each
  // rejection must carry a parseable retry-after hint.
  RouterOptions gated_options = cached_options;
  gated_options.cache_entries = 0;
  gated_options.max_pending = 1;
  auto gated = Router::Open(gated_options);
  gated.status().Abort("opening the admission-drill router");
  const size_t fan = smoke ? 4 : 8;
  std::atomic<uint64_t> rejections{0};
  std::atomic<uint64_t> bad_rejections{0};
  int rounds = 0;
  while (rounds < 50 && rejections.load() == 0) {
    ++rounds;
    // Start barrier: without it, on a busy single-CPU host each thread
    // can be spawned, scheduled, and finish its (fast) query before the
    // next thread is even created — fully serialized, so the gate never
    // sees two queries in flight and the drill flakes.
    std::atomic<size_t> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < fan; ++t) {
      threads.emplace_back([&] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        // Burst rather than a single shot: one query is shorter than a
        // scheduler timeslice, so on a single-CPU host a lone query per
        // thread can run to completion unpreempted and the gate never
        // sees overlap. A burst keeps this thread inside queries for
        // several milliseconds, so whichever thread is preempted
        // mid-query hands the CPU to one that then collides with it.
        for (int shot = 0; shot < 64 && rejections.load() == 0; ++shot) {
          auto result = (*gated)->SearchQuery(queries[0], params.top_k, 1,
                                              ShardQueryMode::kStrict);
          if (!result.ok() && result.status().IsOverloaded()) {
            rejections.fetch_add(1);
            if (RetryAfterHintMs(result.status()) < 0) {
              bad_rejections.fetch_add(1);
            }
          }
        }
      });
    }
    while (ready.load() < fan) std::this_thread::yield();
    go.store(true, std::memory_order_release);
    for (std::thread& thread : threads) thread.join();
  }
  std::printf("admission    : %d round(s) of %zu concurrent queries at "
              "max_pending=1 -> %llu kOverloaded rejection(s), retry-after "
              "on all: %s\n",
              rounds, fan,
              static_cast<unsigned long long>(rejections.load()),
              bad_rejections.load() == 0 ? "yes" : "NO (bug!)");
  RecordMetric("part8_overload_rejections",
               static_cast<double>(rejections.load()));
  if (rejections.load() == 0 || bad_rejections.load() != 0) {
    std::fprintf(stderr, "FATAL: the admission gate never shed (or shed "
                 "without a retry-after hint)\n");
    std::abort();
  }

  std::filesystem::remove_all(shard_root);
  std::printf("(the cache returns the stored doubles, bit for bit — the "
              "speedup is the full fan-out it never re-ran; the gate sheds "
              "the excess deterministically instead of queueing it)\n");
}

// Part 9: the flattened probe hot path — what did the SoA arena, the
// open-addressing probe tables, and batched strip scoring actually buy?
//
// The workload is the amortized-probe shape discovery hits at scale: one
// prepared query probed against many candidates whose key domains are
// mostly disjoint from the query's (open-data reality: almost nothing
// joins), with an explicit MLE estimator over int64 values so estimation
// is cheap and probe/join cost dominates — exactly the regime the
// tentpole targets. Three implementations of the same evaluation:
//
//   legacy  — the pre-flattening production path, replicated verbatim:
//             per-candidate std::unordered_map probe, per-join sample
//             vectors and matched-key unordered_set;
//   flat    — production per-candidate path (PreparedCandidateSketch on
//             FlatProbeTable), one query.Estimate per candidate;
//   batched — production SketchIndex::EvaluateAll (flat SoA strips, train
//             runs computed once, arena match scratch).
//
// All three are cross-checked bit-identical before any timing, every
// query. Timed single-threaded: this measures the probe path itself, not
// the thread pool (the CI container has 1 CPU anyway).
void RunFlatHotPath(const BenchParams& params, bool smoke, Rng* rng) {
  JoinMIConfig config = MakeJoinConfig(params);
  config.estimator = MIEstimatorKind::kMLE;
  const size_t num_candidates = smoke ? 24 : 200;
  const size_t candidate_rows = smoke ? 400 : 2000;
  const size_t num_queries = smoke ? 2 : 8;

  std::printf("\n== flat probe hot path: legacy unordered_map vs flat "
              "per-candidate vs batched strips (x1, Q=%zu, %zu candidates, "
              "MLE) ==\n",
              num_queries, num_candidates);

  // Candidate t draws keys from a window sliding away from the query
  // domain [0, distinct_keys): early candidates overlap and join, the
  // long tail shares nothing and must be skipped as cheaply as possible.
  SketchIndex index(config);
  for (size_t t = 0; t < num_candidates; ++t) {
    const uint64_t offset = t * (params.distinct_keys / 4);
    std::vector<std::string> keys;
    std::vector<int64_t> values;
    keys.reserve(candidate_rows);
    values.reserve(candidate_rows);
    for (size_t i = 0; i < candidate_rows; ++i) {
      const uint64_t k = offset + rng->NextBounded(params.distinct_keys);
      keys.push_back(KeyName(k));
      values.push_back(static_cast<int64_t>(k % 16));
    }
    auto table =
        *Table::FromColumns({{"K", Column::MakeString(std::move(keys))},
                             {"V", Column::MakeInt64(std::move(values))}});
    index.AddCandidate(*table, ColumnPairRef{"flat" + std::to_string(t), "K",
                                             "V"})
        .Abort("part 9 candidate");
  }

  std::vector<JoinMIQuery> queries;
  queries.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    auto base = MakeBaseTable(params, rng);
    queries.push_back(
        *JoinMIQuery::Create(*base, "K", "Y", config));
  }

  // The legacy probe maps, built at "load time" exactly as the pre-flat
  // index did (node-based unordered_map per candidate).
  std::vector<std::unordered_map<uint64_t, uint32_t>> legacy_probes;
  legacy_probes.reserve(index.size());
  for (const IndexedCandidate& candidate : index.candidates()) {
    std::unordered_map<uint64_t, uint32_t> probe;
    probe.reserve(candidate.sketch().entries.size());
    for (uint32_t i = 0; i < candidate.sketch().entries.size(); ++i) {
      probe.emplace(candidate.sketch().entries[i].key_hash, i);
    }
    legacy_probes.push_back(std::move(probe));
  }

  struct Outcome {
    std::optional<JoinMIEstimate> estimate;
    bool skipped = false;
  };

  // The pre-flattening per-candidate evaluation, kept verbatim so the
  // baseline cannot silently improve with the production code: walk every
  // train entry, probe the node map, grow fresh sample vectors and a
  // matched-key set, then score.
  auto legacy_evaluate = [&config](const JoinMIQuery& query,
                                   const Sketch& candidate,
                                   const std::unordered_map<uint64_t,
                                                            uint32_t>& probe) {
    Outcome outcome;
    const Sketch& train = query.train_sketch();
    PairedSample sample;
    sample.x.reserve(train.entries.size());
    sample.y.reserve(train.entries.size());
    std::unordered_set<uint64_t> matched;
    matched.reserve(train.entries.size());
    for (const SketchEntry& entry : train.entries) {
      const auto it = probe.find(entry.key_hash);
      if (it == probe.end()) continue;
      sample.x.push_back(candidate.entries[it->second].value);
      sample.y.push_back(entry.value);
      matched.insert(entry.key_hash);
    }
    auto scored = ScoreSketchJoinSample(sample, sample.size(),
                                        config.estimator, config.mi_options,
                                        config.min_join_size);
    if (scored.ok()) {
      outcome.estimate = JoinMIEstimate{scored->mi, scored->estimator,
                                        scored->join_size, /*sketched=*/true};
    } else if (scored.status().IsOutOfRange()) {
      outcome.skipped = true;
    }
    return outcome;
  };

  auto flat_evaluate = [](const JoinMIQuery& query,
                          const IndexedCandidate& candidate) {
    Outcome outcome;
    auto estimate = query.Estimate(candidate.prepared);
    if (estimate.ok()) {
      outcome.estimate = *estimate;
    } else if (estimate.status().IsOutOfRange()) {
      outcome.skipped = true;
    }
    return outcome;
  };

  // Correctness gate before any timing: all three paths must agree
  // bit-for-bit on every (query, candidate) outcome.
  for (const JoinMIQuery& query : queries) {
    auto batched = index.EvaluateAll(query, 1);
    batched.status().Abort("part 9 batched evaluation");
    for (size_t c = 0; c < index.size(); ++c) {
      const Outcome legacy =
          legacy_evaluate(query, index.candidates()[c].sketch(),
                          legacy_probes[c]);
      const Outcome flat = flat_evaluate(query, index.candidates()[c]);
      const std::optional<JoinMIEstimate>& batch = batched->estimates[c];
      const bool agree =
          legacy.estimate.has_value() == flat.estimate.has_value() &&
          flat.estimate.has_value() == batch.has_value() &&
          (!batch.has_value() ||
           (legacy.estimate->mi == flat.estimate->mi &&
            flat.estimate->mi == batch->mi &&
            legacy.estimate->sample_size == batch->sample_size &&
            flat.estimate->sample_size == batch->sample_size &&
            legacy.estimate->estimator == batch->estimator));
      if (!agree) {
        std::fprintf(stderr,
                     "FATAL: part 9 paths disagree on candidate %zu\n", c);
        std::abort();
      }
    }
  }

  // One untimed warm-up pass per path so thread_local scratch (arena,
  // sample capacity, train-run vector) reaches its steady-state size
  // before either the clocks or the allocation counter start.
  for (const JoinMIQuery& query : queries) {
    index.EvaluateAll(query, 1).status().Abort("part 9 warm-up");
  }

  const uint64_t legacy_allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  const auto legacy_start = std::chrono::steady_clock::now();
  size_t legacy_evaluated = 0;
  for (const JoinMIQuery& query : queries) {
    for (size_t c = 0; c < index.size(); ++c) {
      if (legacy_evaluate(query, index.candidates()[c].sketch(),
                          legacy_probes[c])
              .estimate.has_value()) {
        ++legacy_evaluated;
      }
    }
  }
  const double legacy_ms = MillisSince(legacy_start);
  const uint64_t legacy_allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - legacy_allocs_before;

  const auto flat_start = std::chrono::steady_clock::now();
  size_t flat_evaluated = 0;
  for (const JoinMIQuery& query : queries) {
    for (size_t c = 0; c < index.size(); ++c) {
      if (flat_evaluate(query, index.candidates()[c]).estimate.has_value()) {
        ++flat_evaluated;
      }
    }
  }
  const double flat_ms = MillisSince(flat_start);

  const uint64_t batched_allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  const auto batched_start = std::chrono::steady_clock::now();
  size_t batched_evaluated = 0;
  for (const JoinMIQuery& query : queries) {
    auto evaluation = index.EvaluateAll(query, 1);
    evaluation.status().Abort("part 9 batched evaluation");
    batched_evaluated += evaluation->num_evaluated;
  }
  const double batched_ms = MillisSince(batched_start);
  const uint64_t batched_allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - batched_allocs_before;

  if (legacy_evaluated != flat_evaluated ||
      flat_evaluated != batched_evaluated) {
    std::fprintf(stderr, "FATAL: part 9 evaluated counts disagree\n");
    std::abort();
  }

  // Steady-state probe-phase allocations, isolated from scoring: a query
  // whose key domain overlaps no candidate exercises the full probe sweep
  // (every candidate walked, every key looked up) while every candidate
  // skips below min_join_size — so nothing downstream of the probe runs.
  // This is also the dominant shape at scale: almost nothing joins.
  JoinMIQuery nojoin_query = [&] {
    std::vector<std::string> keys;
    std::vector<int64_t> targets;
    keys.reserve(params.base_rows);
    targets.reserve(params.base_rows);
    for (size_t i = 0; i < params.base_rows; ++i) {
      const uint64_t k = 100000000 + rng->NextBounded(params.distinct_keys);
      keys.push_back(KeyName(k));
      targets.push_back(static_cast<int64_t>(k % 16));
    }
    auto base =
        *Table::FromColumns({{"K", Column::MakeString(std::move(keys))},
                             {"Y", Column::MakeInt64(std::move(targets))}});
    return *JoinMIQuery::Create(*base, "K", "Y", config);
  }();
  index.EvaluateAll(nojoin_query, 1).status().Abort("part 9 probe warm-up");
  const size_t probe_passes = 4;
  const uint64_t probe_allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (size_t pass = 0; pass < probe_passes; ++pass) {
    auto evaluation = index.EvaluateAll(nojoin_query, 1);
    evaluation.status().Abort("part 9 probe pass");
    if (evaluation->num_skipped != index.size()) {
      std::fprintf(stderr, "FATAL: part 9 no-join query joined something\n");
      std::abort();
    }
  }
  const double probe_allocs_per_query =
      static_cast<double>(g_heap_allocs.load(std::memory_order_relaxed) -
                          probe_allocs_before) /
      static_cast<double>(probe_passes);

  const double flat_speedup = legacy_ms / flat_ms;
  const double batched_speedup = legacy_ms / batched_ms;
  const double legacy_apq =
      static_cast<double>(legacy_allocs) / static_cast<double>(num_queries);
  const double batched_apq =
      static_cast<double>(batched_allocs) / static_cast<double>(num_queries);
  const double allocs_per_candidate =
      batched_apq / static_cast<double>(index.size());
  std::printf("legacy  (unordered_map/candidate): %8.1f ms  (%.1f ms/query, "
              "%.0f allocs/query)\n",
              legacy_ms, legacy_ms / num_queries, legacy_apq);
  std::printf("flat    (prepared per-candidate) : %8.1f ms  (%.1f ms/query) "
              " %.2fx vs legacy\n",
              flat_ms, flat_ms / num_queries, flat_speedup);
  std::printf("batched (EvaluateAll strips)     : %8.1f ms  (%.1f ms/query, "
              "%.0f allocs/query = %.2f/candidate)  %.2fx vs legacy\n",
              batched_ms, batched_ms / num_queries, batched_apq,
              allocs_per_candidate, batched_speedup);
  std::printf("probe phase only (no-join query) : %.1f allocs/query across "
              "%zu candidates\n",
              probe_allocs_per_query, index.size());
  std::printf("(steady state: the batched path's probe scratch lives in a "
              "reused bump arena, so a full probe sweep allocates O(1) — "
              "the outcome vectors — regardless of candidate count; the "
              "allocs/query above are dominated by the few candidates that "
              "actually reach the estimator)\n");

  RecordMetric("part9_candidates", static_cast<double>(index.size()));
  RecordMetric("part9_queries", static_cast<double>(num_queries));
  RecordMetric("part9_legacy_ms_per_query", legacy_ms / num_queries);
  RecordMetric("part9_flat_ms_per_query", flat_ms / num_queries);
  RecordMetric("part9_batched_ms_per_query", batched_ms / num_queries);
  RecordMetric("part9_flat_speedup", flat_speedup);
  RecordMetric("part9_batched_speedup", batched_speedup);
  RecordMetric("part9_legacy_allocs_per_query", legacy_apq);
  RecordMetric("part9_batched_allocs_per_query", batched_apq);
  RecordMetric("part9_allocs_per_candidate", allocs_per_candidate);
  RecordMetric("part9_probe_allocs_per_query", probe_allocs_per_query);

  // Hard gates. The probe-phase allocation bound holds in any mode (it is
  // a count, not a timing); the speedup gate runs full mode only — smoke
  // timings on shared CI runners are noise, and bench_check.py's ratio
  // gate covers smoke regressions.
  if (probe_allocs_per_query >= 8.0) {
    std::fprintf(stderr,
                 "FATAL: probe phase allocates %.1f blocks/query; the arena "
                 "hot path promises O(1) (< 8)\n",
                 probe_allocs_per_query);
    std::abort();
  }
  if (!smoke && batched_speedup < 2.0) {
    std::fprintf(stderr,
                 "FATAL: batched hot path is only %.2fx vs legacy "
                 "(required >= 2x)\n",
                 batched_speedup);
    std::abort();
  }
}

// Part 10: the mutable index under live traffic. Phase A serves a base
// deployment through a Router (cache off — the fan-out is on trial, not
// the cache) and measures per-query latency in steady state, then again
// while an IngestCoordinator interleaves delta appends, a publish, and a
// router reload between the timed queries. Phase B loads the same final
// candidate set with 0%, 25%, and 50% of candidates living in delta
// sidecars and measures the overlay's per-query read cost. Every serving
// path is cross-checked bit-identical to the full unsharded index before
// any number prints; the gates in bench_check.py watch the slowdown and
// overlay ratios, never raw milliseconds.
void RunOnlineIngest(const BenchParams& params,
                     const TableRepository& repository, size_t threads,
                     bool smoke, Rng* rng) {
  const JoinMIConfig config = MakeJoinConfig(params);
  SketchIndex full(config);
  full.IndexRepository(repository).status().Abort("building the index");
  auto query_table = MakeBaseTable(params, rng);
  const size_t queries = smoke ? 6 : 18;
  const size_t num_shards = 2;

  auto reference = TopKJoinMISearch(*query_table, {"K", "Y"}, full,
                                    params.top_k, threads);
  reference.status().Abort("unsharded reference search");

  const std::string root =
      "/tmp/joinmi_bench_ingest." + std::to_string(getpid());

  // The first `count` candidates as their own index — the state of the
  // world when the base shards were built.
  auto prefix_index = [&](size_t count) {
    SketchIndex index(config);
    for (size_t i = 0; i < count; ++i) {
      const IndexedCandidate& candidate = full.candidates()[i];
      index.AddSketch(candidate.ref, candidate.sketch())
          .Abort("copying a candidate sketch");
    }
    return index;
  };
  auto tail_records = [&](size_t from, size_t to) {
    std::vector<CandidateRecord> records;
    for (size_t i = from; i < to; ++i) {
      const IndexedCandidate& candidate = full.candidates()[i];
      records.push_back(CandidateRecord{candidate.ref, candidate.sketch()});
    }
    return records;
  };

  std::printf("\n== online ingest: serving while appending (engine x%zu, "
              "%zu shards, %zu candidates) ==\n",
              threads, num_shards, full.size());

  // ---------------- Phase A: steady state vs ingest+reload in progress.
  const size_t base_count = full.size() - full.size() / 4;
  const std::string live_dir = root + "/live";
  BuildShards(prefix_index(base_count), num_shards,
              ShardPartitionPolicy::kRoundRobin, live_dir)
      .status()
      .Abort("building the base deployment");
  RouterOptions options;
  options.manifest_path = live_dir;
  options.cache_entries = 0;  // measure the fan-out, not the cache
  options.num_threads = threads;
  auto router = Router::Open(std::move(options));
  router.status().Abort("opening the router");

  auto timed_query = [&]() {
    const auto start = std::chrono::steady_clock::now();
    (*router)
        ->Search(*query_table, {"K", "Y"}, params.top_k)
        .status()
        .Abort("router search");
    return MillisSince(start);
  };

  double steady_total = 0;
  for (size_t q = 0; q < queries; ++q) steady_total += timed_query();
  const double steady_ms = steady_total / queries;

  auto coordinator = ingest::IngestCoordinator::Open(live_dir);
  coordinator.status().Abort("opening the ingest coordinator");
  // One ingest step between every few timed queries, so the "during"
  // number genuinely overlaps appends, the publish, and the reload.
  const size_t delta_count = full.size() - base_count;
  const size_t append_batches = 3;
  const size_t total_steps = append_batches + 2;  // appends, publish, reload
  const size_t queries_per_step = (queries + total_steps - 1) / total_steps;
  double during_total = 0;
  size_t during_queries = 0;
  double reload_ms = 0;
  for (size_t step = 0; step < total_steps; ++step) {
    if (step < append_batches) {
      const size_t from = base_count + (delta_count * step) / append_batches;
      const size_t to =
          base_count + (delta_count * (step + 1)) / append_batches;
      if (to > from) {
        (*coordinator)
            ->Append(tail_records(from, to))
            .Abort("appending a delta batch");
      }
    } else if (step == append_batches) {
      (*coordinator)->Publish().status().Abort("publishing the generation");
    } else {
      const auto reload_start = std::chrono::steady_clock::now();
      (*router)->Reload().Abort("reloading the router");
      reload_ms = MillisSince(reload_start);
    }
    for (size_t q = 0; q < queries_per_step; ++q) {
      during_total += timed_query();
      ++during_queries;
    }
  }
  const double during_ms = during_total / during_queries;
  const double slowdown = during_ms / steady_ms;

  // Correctness gate: the post-reload overlay must rank exactly like the
  // full index rebuilt from scratch.
  auto post_reload =
      (*router)->Search(*query_table, {"K", "Y"}, params.top_k);
  post_reload.status().Abort("post-reload search");
  ExpectSameRanking(*reference, *post_reload,
                    "post-reload overlay and full-index");

  std::printf("steady state : %8.3f ms/query (epoch 0, %zu candidates)\n",
              steady_ms, base_count);
  std::printf("during ingest: %8.3f ms/query (%.2fx steady; %zu appended, "
              "reload %.2f ms, epoch %llu)\n",
              during_ms, slowdown, delta_count, reload_ms,
              static_cast<unsigned long long>((*router)->epoch()));

  // ------------------- Phase B: delta-overlay cost vs delta size.
  const std::vector<std::pair<const char*, size_t>> fractions = {
      {"00", 0},
      {"25", full.size() / 4},
      {"50", full.size() / 2},
  };
  std::vector<double> overlay_ms;
  for (const auto& [label, dcount] : fractions) {
    const std::string dir = root + "/overlay" + label;
    BuildShards(prefix_index(full.size() - dcount), num_shards,
                ShardPartitionPolicy::kRoundRobin, dir)
        .status()
        .Abort("building an overlay deployment");
    if (dcount > 0) {
      auto overlay_coordinator = ingest::IngestCoordinator::Open(dir);
      overlay_coordinator.status().Abort("opening an overlay coordinator");
      (*overlay_coordinator)
          ->Append(tail_records(full.size() - dcount, full.size()))
          .Abort("appending the overlay delta");
      (*overlay_coordinator)
          ->Publish()
          .status()
          .Abort("publishing the overlay");
    }
    auto manifest_path = ingest::ResolveManifestPath(dir);
    manifest_path.status().Abort("resolving the overlay deployment");
    auto sharded = ShardedSketchIndex::Load(*manifest_path);
    sharded.status().Abort("loading the overlay deployment");
    auto check = TopKJoinMISearch(*query_table, {"K", "Y"}, *sharded,
                                  params.top_k, threads);
    check.status().Abort("overlay search");
    ExpectSameRanking(*reference, *check, "delta-overlay and full-index");

    const auto start = std::chrono::steady_clock::now();
    for (size_t q = 0; q < queries; ++q) {
      TopKJoinMISearch(*query_table, {"K", "Y"}, *sharded, params.top_k,
                       threads)
          .status()
          .Abort("overlay search");
    }
    const double ms = MillisSince(start) / queries;
    overlay_ms.push_back(ms);
    std::printf("delta %s%%    : %8.3f ms/query (%zu of %zu candidates in "
                "JMDS sidecars)\n",
                label, ms, dcount, full.size());
  }
  const double overlay_ratio = overlay_ms[2] / overlay_ms[0];
  std::printf("overlay cost : 50%%-delta runs %.2fx the compacted "
              "deployment\n",
              overlay_ratio);

  RecordMetric("part10_candidates", static_cast<double>(full.size()));
  RecordMetric("part10_steady_ms_per_query", steady_ms);
  RecordMetric("part10_during_ingest_ms_per_query", during_ms);
  RecordMetric("part10_ingest_slowdown", slowdown);
  RecordMetric("part10_reload_ms", reload_ms);
  RecordMetric("part10_overlay_delta00_ms_per_query", overlay_ms[0]);
  RecordMetric("part10_overlay_delta25_ms_per_query", overlay_ms[1]);
  RecordMetric("part10_overlay_delta50_ms_per_query", overlay_ms[2]);
  RecordMetric("part10_overlay_cost_ratio", overlay_ratio);

  std::error_code cleanup_error;
  std::filesystem::remove_all(root, cleanup_error);
}

int Run(size_t threads, bool smoke) {
  const BenchParams params = smoke ? SmokeParams() : BenchParams{};
  std::printf("top-k discovery throughput%s — base %zu rows, %zu candidate "
              "tables x %zu rows, sketch n=%zu, k=%zu\n\n",
              smoke ? " (smoke mode)" : "", params.base_rows,
              params.candidate_tables, params.candidate_rows,
              params.sketch_capacity, params.top_k);
  Rng rng(20240612);
  auto base = MakeBaseTable(params, &rng);
  TableRepository repository = MakeRepository(params, &rng);

  const double naive_ms = RunNaiveSerial(params, *base, repository);
  TopKSearchResult serial_result;
  const double engine1_ms =
      RunEngine(params, *base, repository, 1, &serial_result);
  TopKSearchResult parallel_result;
  const double engineN_ms =
      RunEngine(params, *base, repository, threads, &parallel_result);
  ExpectSameRanking(serial_result, parallel_result,
                    "1-thread and multi-thread");

  std::printf("\nspeedup vs naive serial: engine x1 %.2fx, engine x%zu "
              "%.2fx\n",
              naive_ms / engine1_ms, threads, naive_ms / engineN_ms);
  std::printf("thread scaling (engine x%zu vs x1): %.2fx\n", threads,
              engine1_ms / engineN_ms);
  RecordMetric("naive_serial_ms", naive_ms);
  RecordMetric("engine_x1_ms", engine1_ms);
  RecordMetric("engine_xT_ms", engineN_ms);

  RunIndexAmortization(params, repository, threads, &rng);
  RunShardScaling(params, repository, threads, &rng);
  RunRpcServing(params, repository, threads, &rng);
  RunConcurrentServing(params, repository, smoke, &rng);
  RunBatchedPipelinedServing(params, repository, smoke, &rng);
  RunPagedStorage(params, repository, threads, smoke, &rng);
  RunFrontTier(params, smoke, &rng);
  RunFlatHotPath(params, smoke, &rng);
  RunOnlineIngest(params, repository, threads, smoke, &rng);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace joinmi

int main(int argc, char** argv) {
  long threads = 4;
  bool smoke = false;
  bool have_threads = false;
  bool usage_error = false;
  std::string json_path;
  for (int arg = 1; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--smoke") == 0 && !smoke) {
      smoke = true;
      continue;
    }
    if (std::strcmp(argv[arg], "--json") == 0 && arg + 1 < argc &&
        json_path.empty()) {
      json_path = argv[++arg];
      continue;
    }
    char* end = nullptr;
    const long parsed = std::strtol(argv[arg], &end, 10);
    if (have_threads || end == argv[arg] || *end != '\0' || parsed < 1 ||
        parsed > 256) {
      usage_error = true;  // unknown flag, repeat, junk, or out of range
      break;
    }
    threads = parsed;
    have_threads = true;
  }
  if (usage_error) {
    std::fprintf(stderr,
                 "usage: %s [--smoke] [--json out.json] [threads 1..256]\n",
                 argv[0]);
    return 2;
  }
  std::vector<std::pair<std::string, double>> metrics;
  if (!json_path.empty()) joinmi::bench::g_metrics = &metrics;
  const int rc = joinmi::bench::Run(static_cast<size_t>(threads), smoke);
  if (rc == 0 && !json_path.empty()) {
    return joinmi::bench::WriteJsonReport(json_path,
                                          static_cast<size_t>(threads),
                                          smoke);
  }
  return rc;
}
