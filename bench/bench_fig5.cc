// E7 — Figure 5: sketch estimates vs full-join estimates on the WBF-like
// collection, broken down by estimator (data-type combination) and by
// minimum sketch-join size. TUPSK, n = 1024.
//
// Paper shape:
//  - agreement tightens as the sketch-join size threshold grows
//    (128 -> 256 -> 512 -> 768);
//  - at small sample sizes MLE overestimates while the KSG-type estimators
//    collapse toward zero;
//  - MLE estimates reach much larger magnitudes ([4, 6]) than KSG-based
//    ones (< 2), so cross-estimator comparisons are not meaningful.

#include "bench/bench_util.h"

#include "src/discovery/opendata_sim.h"

namespace joinmi {
namespace bench {
namespace {

struct Point {
  double full = 0.0;
  double sketch = 0.0;
  size_t join_size = 0;
  MIEstimatorKind estimator = MIEstimatorKind::kMLE;
};

void Run() {
  // Real repositories mix join-attribute domain sizes, which is what
  // spreads sketch-join sizes across Figure 5's buckets; sweep the right
  // domain so every threshold bucket is populated.
  std::vector<GeneratedTablePair> pairs;
  for (size_t right_domain : {900u, 1400u, 2000u, 2800u, 3500u}) {
    OpenDataParams params = WBFLikeParams();
    params.num_pairs = 110;
    params.right_key_domain = right_domain;
    params.key_overlap = 0.9;
    params.seed = 8800 + right_domain;
    auto sub = GenerateOpenDataCollection(params);
    sub.status().Abort("generating collection");
    for (auto& pair : *sub) pairs.push_back(std::move(pair));
  }

  std::vector<Point> points;
  for (const auto& pair : pairs) {
    const AggKind agg = pair.feature_type == DataType::kString
                            ? AggKind::kMode
                            : AggKind::kAvg;
    JoinMIConfig config;
    config.sketch_method = SketchMethod::kTupsk;
    config.sketch_capacity = 1024;
    config.aggregation = agg;
    config.min_join_size = 32;
    auto full = FullJoinMI(*pair.train, *pair.cand, {"K", "Y", "K", "Z"},
                           config);
    if (!full.ok()) continue;
    auto sketched = SketchJoinMI(*pair.train, *pair.cand,
                                 {"K", "Y", "K", "Z"}, config);
    if (!sketched.ok()) continue;
    points.push_back(Point{full->mi, sketched->mi, sketched->sample_size,
                           sketched->estimator});
  }

  const std::vector<size_t> thresholds = {128, 256, 512, 768};
  const std::vector<MIEstimatorKind> estimators = {
      MIEstimatorKind::kMLE, MIEstimatorKind::kMixedKSG,
      MIEstimatorKind::kDCKSG};
  PrintHeader({"estimator", "join >", "  n", " RMSE ", " bias ", "Pear."});
  for (MIEstimatorKind estimator : estimators) {
    for (size_t threshold : thresholds) {
      std::vector<double> full, sketch;
      for (const Point& p : points) {
        if (p.estimator != estimator || p.join_size <= threshold) continue;
        full.push_back(p.full);
        sketch.push_back(p.sketch);
      }
      if (full.size() < 3) {
        std::printf("| %-9s | %5zu |   - |    -   |    -   |   -  |\n",
                    MIEstimatorKindToString(estimator), threshold);
        continue;
      }
      const double rmse = RootMeanSquaredError(full, sketch).ValueOr(0.0);
      const double pearson = PearsonCorrelation(full, sketch).ValueOr(0.0);
      double bias = 0.0;
      for (size_t i = 0; i < full.size(); ++i) bias += sketch[i] - full[i];
      bias /= static_cast<double>(full.size());
      std::printf("| %-9s | %5zu | %3zu | %6.3f | %+5.2f | %5.2f |\n",
                  MIEstimatorKindToString(estimator), threshold, full.size(),
                  rmse, bias, pearson);
    }
  }

  // Estimate-magnitude contrast across estimators (Section V-C3).
  std::printf("\nEstimate magnitude by estimator (full-join path):\n");
  for (MIEstimatorKind estimator : estimators) {
    double max_full = 0.0, max_sketch = 0.0;
    size_t count = 0;
    for (const Point& p : points) {
      if (p.estimator != estimator) continue;
      max_full = std::max(max_full, p.full);
      max_sketch = std::max(max_sketch, p.sketch);
      ++count;
    }
    if (count == 0) continue;
    std::printf("  %-9s  max full-join MI %5.2f, max sketch MI %5.2f (%zu pairs)\n",
                MIEstimatorKindToString(estimator), max_full, max_sketch,
                count);
  }
  std::printf(
      "\nExpected shape (paper Fig. 5): RMSE and bias shrink as the join-"
      "size\nthreshold rises; MLE overestimates at small samples while "
      "KSG-type\nestimators undershoot; MLE magnitudes exceed KSG ones.\n");
}

}  // namespace
}  // namespace bench
}  // namespace joinmi

int main() {
  std::printf(
      "E7 / Figure 5: sketch vs full-join MI on the WBF-like collection,\n"
      "TUPSK n = 1024, bucketed by minimum sketch-join size.\n\n");
  joinmi::bench::Run();
  return 0;
}
