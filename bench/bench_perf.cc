// E8 — Section V-D performance evaluation (google-benchmark).
//
// Paper's exemplar numbers at n = 256: growing the table from N = 5k to
// N = 20k raises full-join time from 0.35ms to 2.1ms while the sketch join
// stays 0.03-0.18ms; MI estimation on the full join grows 2.2ms -> 10.7ms
// while sketch-sample MI stays ~0.1ms. The shape to reproduce: full-path
// costs scale with N, sketch-path costs are ~constant (bounded by n).
//
// Also covered: sketch construction throughput per method (the offline
// cost) and the KMV-heap vs full-sort build ablation.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench/bench_util.h"
#include "src/join/left_join.h"
#include "src/sketch/key_hash.h"

namespace joinmi {
namespace bench {
namespace {

constexpr size_t kSketchSize = 256;

SyntheticDataset MakeDataset(size_t rows) {
  SyntheticSpec spec;
  spec.distribution = SyntheticDistribution::kTrinomial;
  spec.m = 64;
  spec.num_rows = rows;
  spec.key_scheme = KeyScheme::kKeyInd;
  spec.seed = 424242;
  return *GenerateSyntheticDataset(spec);
}

// ------------------------------------------------------------ Join paths --

void BM_FullJoin(benchmark::State& state) {
  const SyntheticDataset dataset = MakeDataset(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto joined = LeftJoinAggregate(*dataset.tables.train, kKeyColumn,
                                    kTargetColumn, *dataset.tables.cand,
                                    kKeyColumn, kFeatureColumn,
                                    {AggKind::kFirst, true, "X"});
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullJoin)->Arg(5000)->Arg(10000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_SketchJoin(benchmark::State& state) {
  const SyntheticDataset dataset = MakeDataset(static_cast<size_t>(state.range(0)));
  SketchOptions options;
  options.capacity = kSketchSize;
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, options);
  const auto& train = dataset.tables.train;
  const auto& cand = dataset.tables.cand;
  auto s_train = *builder->SketchTrain(*(*train->GetColumn(kKeyColumn)),
                                       *(*train->GetColumn(kTargetColumn)));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn(kKeyColumn)),
                                          *(*cand->GetColumn(kFeatureColumn)),
                                          AggKind::kFirst);
  for (auto _ : state) {
    auto joined = JoinSketches(s_train, s_cand);
    benchmark::DoNotOptimize(joined);
  }
}
BENCHMARK(BM_SketchJoin)->Arg(5000)->Arg(10000)->Arg(20000)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------ Estimation paths --

void BM_MIFullJoin(benchmark::State& state) {
  const SyntheticDataset dataset = MakeDataset(static_cast<size_t>(state.range(0)));
  PairedSample sample;
  sample.x = dataset.xs;
  sample.y = dataset.ys;
  for (auto _ : state) {
    auto mi = EstimateMI(MIEstimatorKind::kMLE, sample);
    benchmark::DoNotOptimize(mi);
  }
}
BENCHMARK(BM_MIFullJoin)->Arg(5000)->Arg(10000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_MISketchSample(benchmark::State& state) {
  const SyntheticDataset dataset = MakeDataset(static_cast<size_t>(state.range(0)));
  SketchOptions options;
  options.capacity = kSketchSize;
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, options);
  const auto& train = dataset.tables.train;
  const auto& cand = dataset.tables.cand;
  auto s_train = *builder->SketchTrain(*(*train->GetColumn(kKeyColumn)),
                                       *(*train->GetColumn(kTargetColumn)));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn(kKeyColumn)),
                                          *(*cand->GetColumn(kFeatureColumn)),
                                          AggKind::kFirst);
  auto joined = *JoinSketches(s_train, s_cand);
  for (auto _ : state) {
    auto mi = EstimateMI(MIEstimatorKind::kMLE, joined.sample);
    benchmark::DoNotOptimize(mi);
  }
}
BENCHMARK(BM_MISketchSample)->Arg(5000)->Arg(10000)->Arg(20000)->Unit(benchmark::kMillisecond);

// KSG-family estimation cost on the sketch sample (kd-tree path).
void BM_MIKsgSketchSample(benchmark::State& state) {
  const SyntheticDataset dataset = MakeDataset(20000);
  SketchOptions options;
  options.capacity = static_cast<size_t>(state.range(0));
  auto builder = MakeSketchBuilder(SketchMethod::kTupsk, options);
  const auto& train = dataset.tables.train;
  const auto& cand = dataset.tables.cand;
  auto s_train = *builder->SketchTrain(*(*train->GetColumn(kKeyColumn)),
                                       *(*train->GetColumn(kTargetColumn)));
  auto s_cand = *builder->SketchCandidate(*(*cand->GetColumn(kKeyColumn)),
                                          *(*cand->GetColumn(kFeatureColumn)),
                                          AggKind::kFirst);
  auto joined = *JoinSketches(s_train, s_cand);
  for (auto _ : state) {
    auto mi = EstimateMI(MIEstimatorKind::kMixedKSG, joined.sample);
    benchmark::DoNotOptimize(mi);
  }
}
BENCHMARK(BM_MIKsgSketchSample)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------- Sketch building --

void BM_SketchBuildTrain(benchmark::State& state) {
  const SyntheticDataset dataset = MakeDataset(20000);
  const auto method = static_cast<SketchMethod>(state.range(0));
  SketchOptions options;
  options.capacity = kSketchSize;
  auto builder = MakeSketchBuilder(method, options);
  const auto& train = dataset.tables.train;
  auto keys = *train->GetColumn(kKeyColumn);
  auto values = *train->GetColumn(kTargetColumn);
  for (auto _ : state) {
    auto sketch = builder->SketchTrain(*keys, *values);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetLabel(SketchMethodToString(method));
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_SketchBuildTrain)
    ->Arg(static_cast<int>(SketchMethod::kTupsk))
    ->Arg(static_cast<int>(SketchMethod::kLv2sk))
    ->Arg(static_cast<int>(SketchMethod::kPrisk))
    ->Arg(static_cast<int>(SketchMethod::kIndsk))
    ->Arg(static_cast<int>(SketchMethod::kCsk))
    ->Unit(benchmark::kMillisecond);

// Ablation: KMV bounded heap vs sort-everything selection for TUPSK ranks.
void BM_SelectionKmvHeap(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  std::vector<SketchEntry> entries(100000);
  for (auto& e : entries) {
    e.key_hash = rng.Next64();
    e.rank = rng.NextDouble();
  }
  for (auto _ : state) {
    KmvHeap heap(n);
    for (const auto& e : entries) {
      if (heap.WouldAdmit(e.rank)) heap.Offer(e);
    }
    auto out = heap.TakeSorted();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(entries.size()));
}
BENCHMARK(BM_SelectionKmvHeap)->Arg(256)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_SelectionFullSort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  std::vector<SketchEntry> entries(100000);
  for (auto& e : entries) {
    e.key_hash = rng.Next64();
    e.rank = rng.NextDouble();
  }
  for (auto _ : state) {
    std::vector<SketchEntry> copy = entries;
    std::sort(copy.begin(), copy.end(),
              [](const SketchEntry& a, const SketchEntry& b) {
                return a.rank < b.rank;
              });
    copy.resize(std::min(n, copy.size()));
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(entries.size()));
}
BENCHMARK(BM_SelectionFullSort)->Arg(256)->Arg(4096)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace joinmi

BENCHMARK_MAIN();
