// Taxi-demand augmentation — the paper's motivating Example 1 (Figure 1).
//
// A data scientist predicts daily taxi demand (NumTrips per ZIP code and
// date) and wants to discover which external tables carry information about
// it. We synthesize the three tables of Figure 1:
//   T_taxi(Date, ZipCode, NumTrips)           -- base table
//   T_weather(Date, Time, Temp, Rainfall)     -- hourly readings, joins on
//                                                Date via AVG aggregation
//   T_demographics(ZipCode, Borough, Population)
// plus a deliberately useless lottery table, then rank every candidate
// (table, key, attribute) by sketch-estimated MI with NumTrips — without
// materializing a single join.
//
// The planted structure: demand rises on rainy days, falls with temperature,
// varies non-monotonically with population (low in sparsely populated and
// in very dense/congested areas — the paper's example of a relationship
// Pearson correlation misses), and differs by borough.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/join_mi.h"
#include "src/discovery/sketch_index.h"

using namespace joinmi;

namespace {

std::string DateString(int day) {
  return "2017-" + std::to_string(1 + day / 28) + "-" +
         std::to_string(1 + day % 28);
}

}  // namespace

int main() {
  Rng rng(20170101);
  constexpr int kDays = 360;
  constexpr int kZips = 60;

  // Latent weather per day.
  std::vector<double> day_temp(kDays), day_rain(kDays);
  for (int d = 0; d < kDays; ++d) {
    day_temp[d] = 50.0 + 30.0 * std::sin(2 * M_PI * d / 360.0) +
                  rng.Gaussian(0, 4.0);
    day_rain[d] = rng.Bernoulli(0.3) ? rng.Uniform(0.05, 1.2) : 0.0;
  }
  // Latent demographics per zip.
  std::vector<int64_t> zip_pop(kZips);
  std::vector<std::string> zip_borough(kZips);
  const char* boroughs[] = {"Manhattan", "Brooklyn", "Queens", "Bronx",
                            "StatenIsland"};
  for (int z = 0; z < kZips; ++z) {
    zip_pop[z] = 5000 + static_cast<int64_t>(rng.NextBounded(95000));
    zip_borough[z] = boroughs[rng.NextBounded(5)];
  }

  // ---- T_taxi: one row per (date, zip). --------------------------------
  std::vector<std::string> taxi_date, taxi_zip;
  std::vector<int64_t> taxi_trips;
  for (int d = 0; d < kDays; ++d) {
    for (int z = 0; z < kZips; ++z) {
      if (!rng.Bernoulli(0.6)) continue;  // not all pairs observed
      double demand = 120.0;
      demand += day_rain[d] > 0 ? 60.0 : 0.0;           // rain -> more taxis
      demand -= 1.2 * (day_temp[d] - 50.0);             // heat -> fewer
      const double pop = static_cast<double>(zip_pop[z]);
      // Non-monotone in population: peaks mid-density.
      demand += 40.0 - 70.0 * std::fabs(pop - 50000.0) / 50000.0;
      // Distinct base demand per borough.
      if (zip_borough[z] == "Manhattan") demand += 50.0;
      if (zip_borough[z] == "Brooklyn") demand += 20.0;
      if (zip_borough[z] == "StatenIsland") demand -= 40.0;
      taxi_date.push_back(DateString(d));
      taxi_zip.push_back("zip" + std::to_string(10000 + z));
      taxi_trips.push_back(
          std::max<int64_t>(0, static_cast<int64_t>(demand + rng.Gaussian(0, 8))));
    }
  }
  auto taxi = *Table::FromColumns(
      {{"Date", Column::MakeString(taxi_date)},
       {"ZipCode", Column::MakeString(taxi_zip)},
       {"NumTrips", Column::MakeInt64(taxi_trips)}});

  // ---- T_weather: hourly readings per date (many-to-one on Date). ------
  std::vector<std::string> weather_date;
  std::vector<double> weather_temp, weather_rain;
  for (int d = 0; d < kDays; ++d) {
    for (int hour = 0; hour < 24; hour += 3) {
      weather_date.push_back(DateString(d));
      weather_temp.push_back(day_temp[d] + rng.Gaussian(0, 2.0));
      weather_rain.push_back(std::max(0.0, day_rain[d] + rng.Gaussian(0, 0.03)));
    }
  }
  auto weather = *Table::FromColumns(
      {{"Date", Column::MakeString(weather_date)},
       {"Temp", Column::MakeDouble(weather_temp)},
       {"Rainfall", Column::MakeDouble(weather_rain)}});

  // ---- T_demographics: one row per zip. --------------------------------
  std::vector<std::string> demo_zip;
  for (int z = 0; z < kZips; ++z) {
    demo_zip.push_back("zip" + std::to_string(10000 + z));
  }
  auto demographics = *Table::FromColumns(
      {{"ZipCode", Column::MakeString(demo_zip)},
       {"Borough", Column::MakeString(zip_borough)},
       {"Population", Column::MakeInt64(zip_pop)}});

  // ---- T_lottery: joinable on Date but pure noise. ----------------------
  std::vector<std::string> lotto_date;
  std::vector<int64_t> lotto_number;
  for (int d = 0; d < kDays; ++d) {
    lotto_date.push_back(DateString(d));
    lotto_number.push_back(static_cast<int64_t>(rng.NextBounded(1000)));
  }
  auto lottery = *Table::FromColumns(
      {{"Date", Column::MakeString(lotto_date)},
       {"WinningNumber", Column::MakeInt64(lotto_number)}});

  std::printf("T_taxi: %zu rows; T_weather: %zu rows; T_demographics: %zu "
              "rows; T_lottery: %zu rows\n\n",
              taxi->num_rows(), weather->num_rows(), demographics->num_rows(),
              lottery->num_rows());

  // ---- Discovery: rank every candidate attribute by sketch MI. ----------
  // Candidates joining on Date use the taxi Date key; candidates joining on
  // ZipCode use the zip key. One JoinMIQuery per join attribute.
  JoinMIConfig config;
  config.sketch_method = SketchMethod::kTupsk;
  config.sketch_capacity = 2048;
  config.min_join_size = 100;
  // NumTrips is an integer count with many ties; the KSG-family estimators
  // assume continuous marginals, so break ties with tiny Gaussian noise
  // (the paper's perturbation device, Section V-A).
  config.mi_options.perturb_sigma = 1e-6;

  struct Candidate {
    const char* table_name;
    const Table* table;
    const char* key;
    const char* value;
    AggKind agg;
  };
  const std::vector<Candidate> candidates = {
      {"weather", weather.get(), "Date", "Temp", AggKind::kAvg},
      {"weather", weather.get(), "Date", "Rainfall", AggKind::kAvg},
      {"demographics", demographics.get(), "ZipCode", "Borough",
       AggKind::kMode},
      {"demographics", demographics.get(), "ZipCode", "Population",
       AggKind::kFirst},
      {"lottery", lottery.get(), "Date", "WinningNumber", AggKind::kFirst},
  };

  struct Scored {
    std::string label;
    double mi;
    size_t samples;
    const char* estimator;
  };
  std::vector<Scored> scored;
  for (const Candidate& candidate : candidates) {
    JoinMIConfig cand_config = config;
    cand_config.aggregation = candidate.agg;
    auto query = JoinMIQuery::Create(*taxi, candidate.key, "NumTrips",
                                     cand_config);
    query.status().Abort("building train sketch");
    auto estimate =
        query->EstimateTable(*candidate.table, candidate.key, candidate.value);
    if (!estimate.ok()) {
      std::printf("  skipped %s.%s: %s\n", candidate.table_name,
                  candidate.value, estimate.status().ToString().c_str());
      continue;
    }
    scored.push_back(Scored{
        std::string(candidate.table_name) + "." + candidate.value +
            " [" + AggKindToString(candidate.agg) + " on " + candidate.key +
            "]",
        estimate->mi, estimate->sample_size,
        MIEstimatorKindToString(estimate->estimator)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.mi > b.mi; });

  std::printf("Augmentation candidates ranked by sketch-estimated MI with "
              "NumTrips:\n\n");
  std::printf("  %-44s %8s %8s  %s\n", "candidate feature", "MI(nats)",
              "samples", "estimator");
  for (const Scored& s : scored) {
    std::printf("  %-44s %8.3f %8zu  %s\n", s.label.c_str(), s.mi, s.samples,
                s.estimator);
  }
  std::printf(
      "\nThe planted signals (weather, demographics) separate from the\n"
      "lottery noise column, whose score marks the estimator noise floor\n"
      "for join-derived features. Population scores despite its\n"
      "relationship with demand being non-monotonic — the case the paper's\n"
      "introduction gives for preferring MI over Pearson correlation — and\n"
      "Borough, a categorical attribute, is scored seamlessly via DC-KSG.\n");
  return 0;
}
