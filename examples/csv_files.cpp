// CSV workflow: the path a downstream user takes with their own files.
// Writes two CSV files to a temp directory, reads them back with type
// inference, and runs both the exact and the sketch MI paths — then shows
// sketch persistence (serialize once offline, reload and probe online).

#include <cstdio>
#include <filesystem>

#include "src/core/join_mi.h"
#include "src/sketch/serialize.h"
#include "src/table/csv.h"

using namespace joinmi;

int main() {
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string sales_path = dir + "/joinmi_example_sales.csv";
  const std::string stores_path = dir + "/joinmi_example_stores.csv";

  // A small sales fact table and a store dimension table.
  {
    std::string sales = "store_id,week,revenue\n";
    std::string stores = "store_id,region,floor_space\n";
    const char* regions[] = {"north", "south", "east", "west"};
    for (int s = 0; s < 40; ++s) {
      const int region = s % 4;
      const int space = 500 + 120 * region + (s * 37) % 90;
      stores += "S" + std::to_string(s) + "," + regions[region] + "," +
                std::to_string(space) + "\n";
      for (int w = 0; w < 8; ++w) {
        // Revenue scales with floor space plus weekly noise.
        const int revenue = space * 3 + ((s * 13 + w * 7) % 200);
        sales += "S" + std::to_string(s) + "," + std::to_string(w) + "," +
                 std::to_string(revenue) + "\n";
      }
    }
    std::FILE* f = std::fopen(sales_path.c_str(), "w");
    std::fputs(sales.c_str(), f);
    std::fclose(f);
    f = std::fopen(stores_path.c_str(), "w");
    std::fputs(stores.c_str(), f);
    std::fclose(f);
  }

  // 1. Read with automatic type inference.
  auto sales = ReadCsvFile(sales_path);
  sales.status().Abort("reading sales CSV");
  auto stores = ReadCsvFile(stores_path);
  stores.status().Abort("reading stores CSV");
  std::printf("sales:  %s\n", (*sales)->schema().ToString().c_str());
  std::printf("stores: %s\n\n", (*stores)->schema().ToString().c_str());

  // 2. How informative is each store attribute about revenue?
  JoinMIConfig config;
  config.sketch_capacity = 256;
  config.mi_options.perturb_sigma = 1e-6;  // integer revenue has ties
  for (const char* attribute : {"floor_space", "region"}) {
    config.aggregation = std::string(attribute) == "region" ? AggKind::kMode
                                                            : AggKind::kFirst;
    const JoinMIQuerySpec spec{"store_id", "revenue", "store_id", attribute};
    auto exact = FullJoinMI(**sales, **stores, spec, config);
    exact.status().Abort("full-join MI");
    auto sketched = SketchJoinMI(**sales, **stores, spec, config);
    sketched.status().Abort("sketch MI");
    std::printf("MI(revenue; %-11s)  full join: %.3f   sketch: %.3f  (%s)\n",
                attribute, exact->mi, sketched->mi,
                MIEstimatorKindToString(sketched->estimator));
  }

  // 3. Persist the candidate sketch, reload it, and probe — the offline /
  //    online split a discovery service uses.
  auto query = JoinMIQuery::Create(**sales, "store_id", "revenue", config);
  query.status().Abort("train sketch");
  auto cand_sketch = query->SketchCandidate(**stores, "store_id",
                                            "floor_space");
  cand_sketch.status().Abort("candidate sketch");
  const std::string sketch_path = dir + "/joinmi_example_sketch.bin";
  WriteSketchFile(*cand_sketch, sketch_path).Abort("persisting sketch");
  auto reloaded = ReadSketchFile(sketch_path);
  reloaded.status().Abort("reloading sketch");
  auto estimate = query->Estimate(*reloaded);
  estimate.status().Abort("estimate from reloaded sketch");
  std::printf(
      "\nReloaded candidate sketch from %s\n  -> MI %.3f from %zu joined "
      "samples, no table access needed.\n",
      sketch_path.c_str(), estimate->mi, estimate->sample_size);
  return 0;
}
