// Quickstart: estimate the mutual information between a base table's target
// and a candidate table's feature across a join — without materializing the
// join — and compare against the exact full-join value.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/join_mi.h"
#include "src/synthetic/pipeline.h"

using namespace joinmi;

int main() {
  // 1. Generate a pair of joinable tables with a known ground-truth MI.
  //    (In a real application these would come from ReadCsvFile.)
  SyntheticSpec spec;
  spec.distribution = SyntheticDistribution::kTrinomial;
  spec.m = 256;          // distinct-value scale
  spec.num_rows = 20000; // rows in the base table
  spec.key_scheme = KeyScheme::kKeyInd;
  spec.seed = 7;
  auto dataset_result = GenerateSyntheticDataset(spec);
  dataset_result.status().Abort("generating dataset");
  const SyntheticDataset& dataset = *dataset_result;
  std::printf("Generated T_train (%zu rows) and T_cand (%zu rows)\n",
              dataset.tables.train->num_rows(),
              dataset.tables.cand->num_rows());
  std::printf("Analytic MI of the joined attributes: %.4f nats\n\n",
              dataset.true_mi);

  // 2. Configure the query: TUPSK sketches of capacity n = 1024, estimator
  //    auto-selected from the column types.
  JoinMIConfig config;
  config.sketch_method = SketchMethod::kTupsk;
  config.sketch_capacity = 1024;
  config.aggregation = AggKind::kFirst;  // candidate keys are already unique

  JoinMIQuerySpec query{/*train_key=*/"K", /*train_target=*/"Y",
                        /*cand_key=*/"K", /*cand_value=*/"Z"};

  // 3. Sketch path: never materializes the join.
  auto sketched = SketchJoinMI(*dataset.tables.train, *dataset.tables.cand,
                               query, config);
  sketched.status().Abort("sketch estimate");
  std::printf("Sketch estimate   : %.4f nats  (estimator=%s, %zu samples)\n",
              sketched->mi, MIEstimatorKindToString(sketched->estimator),
              sketched->sample_size);

  // 4. Exact path: materializes the left join for comparison.
  auto full = FullJoinMI(*dataset.tables.train, *dataset.tables.cand, query,
                         config);
  full.status().Abort("full-join estimate");
  std::printf("Full-join estimate: %.4f nats  (estimator=%s, %zu samples)\n",
              full->mi, MIEstimatorKindToString(full->estimator),
              full->sample_size);

  std::printf("\nSketch vs truth error: %+.4f nats\n",
              sketched->mi - dataset.true_mi);
  return 0;
}
