// Dataset search over a simulated open-data repository.
//
// Deployment shape from the paper's introduction: sketch every candidate
// column pair of a repository offline, then answer "which tables, joined to
// my table, tell me the most about my target?" online — touching only
// sketches, never the repository's raw rows.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/admission.h"
#include "src/common/random.h"
#include "src/discovery/opendata_sim.h"
#include "src/discovery/ranking.h"
#include "src/discovery/replica_router.h"  // ReadShardEndpoints (reporting)
#include "src/discovery/repository.h"
#include "src/discovery/router.h"
#include "src/discovery/search.h"
#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/discovery/topk_merge.h"
#include "src/sketch/serialize.h"

using namespace joinmi;

int main(int argc, char** argv) {
  // --keep-index PATH persists the index there (and keeps it) so CI can
  // chain the build_shards tool onto this example's output.
  //
  // --rpc-manifest M --rpc-endpoints E run the same search through
  // RpcShardClient against already-running shard servers and drift-check
  // it against the unsharded answer; --rpc-expect-down N instead asserts
  // that exactly N shards are down: strict mode must fail and degraded
  // mode must return the surviving shards' correctly merged top-k. This
  // is the CI serving end-to-end (generation is fully deterministic, so a
  // rerun probes the same index the servers loaded).
  //
  // --rpc-replica-endpoints E reads a v2 (replicated) endpoints file and
  // routes through ReplicaShardClient instead; --rpc-loop N issues N
  // strict drift-checked queries 200ms apart, so a harness can kill a
  // replica MID-RUN and this process proves failover: every query must
  // keep matching the unsharded answer with zero shard failures.
  //
  // --rpc-pipeline-drill N (with --rpc-endpoints) opens ONE connection
  // per shard and fires N strict queries from N concurrent threads, so
  // every request shares that connection via JMRP v2 pipelining; each
  // ranking is diffed against the unsharded answer and the exit code
  // reflects any divergence.
  //
  // Every sharded/remote deployment below assembles through ONE entry
  // point: discovery::Router::Open. The router adds a result cache (the
  // repeat-query check asserts a hit stays bit-identical) and admission
  // control; --overload-drill N fires rounds of N concurrent queries
  // until at least one is shed with a structured kOverloaded + a
  // retry_after_ms hint, while every admitted query must still match the
  // unsharded answer exactly. --router-max-pending M arms the router-side
  // gate for that drill (without it, rejections must come from a shard
  // server started with --max-pending). --stats-json PATH writes the
  // router's metrics snapshot at exit.
  std::string keep_index_path;
  std::string rpc_manifest_path;
  std::string rpc_endpoints_path;
  std::string rpc_replica_endpoints_path;
  std::string stats_json_path;
  long rpc_expect_down = 0;
  long rpc_loop = 1;
  long limit_index = 0;
  long rpc_pipeline_drill = 0;
  long overload_drill = 0;
  long router_max_pending = 0;
  for (int arg = 1; arg < argc; ++arg) {
    const bool has_value = arg + 1 < argc;
    if (std::strcmp(argv[arg], "--keep-index") == 0 && has_value) {
      keep_index_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--rpc-manifest") == 0 && has_value) {
      rpc_manifest_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--rpc-endpoints") == 0 && has_value) {
      rpc_endpoints_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--rpc-replica-endpoints") == 0 &&
               has_value) {
      rpc_replica_endpoints_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--rpc-loop") == 0 && has_value) {
      char* end = nullptr;
      rpc_loop = std::strtol(argv[++arg], &end, 10);
      if (end == argv[arg] || *end != '\0' || rpc_loop < 1 ||
          rpc_loop > 100000) {
        std::fprintf(stderr, "--rpc-loop must be a positive integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[arg], "--rpc-expect-down") == 0 &&
               has_value) {
      char* end = nullptr;
      rpc_expect_down = std::strtol(argv[++arg], &end, 10);
      if (end == argv[arg] || *end != '\0' || rpc_expect_down < 1 ||
          rpc_expect_down > 100000) {
        std::fprintf(stderr,
                     "--rpc-expect-down must be a positive integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[arg], "--rpc-pipeline-drill") == 0 &&
               has_value) {
      char* end = nullptr;
      rpc_pipeline_drill = std::strtol(argv[++arg], &end, 10);
      if (end == argv[arg] || *end != '\0' || rpc_pipeline_drill < 1 ||
          rpc_pipeline_drill > 1024) {
        std::fprintf(stderr,
                     "--rpc-pipeline-drill must be in [1, 1024]\n");
        return 2;
      }
    } else if (std::strcmp(argv[arg], "--overload-drill") == 0 &&
               has_value) {
      char* end = nullptr;
      overload_drill = std::strtol(argv[++arg], &end, 10);
      if (end == argv[arg] || *end != '\0' || overload_drill < 2 ||
          overload_drill > 256) {
        std::fprintf(stderr, "--overload-drill must be in [2, 256]\n");
        return 2;
      }
    } else if (std::strcmp(argv[arg], "--router-max-pending") == 0 &&
               has_value) {
      char* end = nullptr;
      router_max_pending = std::strtol(argv[++arg], &end, 10);
      if (end == argv[arg] || *end != '\0' || router_max_pending < 0) {
        std::fprintf(stderr,
                     "--router-max-pending must be a non-negative "
                     "integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[arg], "--stats-json") == 0 && has_value) {
      stats_json_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--limit-index") == 0 && has_value) {
      char* end = nullptr;
      limit_index = std::strtol(argv[++arg], &end, 10);
      if (end == argv[arg] || *end != '\0' || limit_index < 1) {
        std::fprintf(stderr, "--limit-index must be a positive integer\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--keep-index PATH] [--stats-json PATH] "
                   "[--limit-index N] "
                   "[--overload-drill N [--router-max-pending M]] "
                   "[--rpc-manifest PATH "
                   "(--rpc-endpoints PATH [--rpc-expect-down N | "
                   "--rpc-pipeline-drill N] | "
                   "--rpc-replica-endpoints PATH [--rpc-loop N])]\n",
                   argv[0]);
      return 2;
    }
  }
  const bool have_rpc_target =
      !rpc_endpoints_path.empty() || !rpc_replica_endpoints_path.empty();
  if (rpc_manifest_path.empty() != !have_rpc_target) {
    std::fprintf(stderr,
                 "--rpc-manifest and exactly one of --rpc-endpoints / "
                 "--rpc-replica-endpoints go together\n");
    return 2;
  }
  if (!rpc_endpoints_path.empty() && !rpc_replica_endpoints_path.empty()) {
    std::fprintf(stderr,
                 "--rpc-endpoints and --rpc-replica-endpoints are "
                 "mutually exclusive\n");
    return 2;
  }
  if (rpc_expect_down > 0 && rpc_endpoints_path.empty()) {
    std::fprintf(stderr,
                 "--rpc-expect-down drills the single-endpoint router "
                 "(--rpc-endpoints)\n");
    return 2;
  }
  if (rpc_pipeline_drill > 0 &&
      (rpc_endpoints_path.empty() || rpc_expect_down > 0)) {
    std::fprintf(stderr,
                 "--rpc-pipeline-drill drills a healthy single-endpoint "
                 "router (--rpc-endpoints, no --rpc-expect-down)\n");
    return 2;
  }
  if (overload_drill > 0 && router_max_pending == 0 && !have_rpc_target) {
    std::fprintf(stderr,
                 "--overload-drill without an RPC target needs "
                 "--router-max-pending to arm the router's gate (with an "
                 "RPC target, the shard server's --max-pending may reject "
                 "instead)\n");
    return 2;
  }
  // 1. Build a repository out of simulated open-data tables. Each generated
  //    pair contributes its candidate table; we keep one query pair aside.
  OpenDataParams params = NYCLikeParams();
  params.num_pairs = 40;
  params.p_string_value = 0.5;
  // 8 latent families: candidates from the query pair's family genuinely
  // inform its target; the other ~35 tables are noise for this query.
  params.num_families = 8;
  auto pairs_result = GenerateOpenDataCollection(params);
  pairs_result.status().Abort("generating repository");
  auto& pairs = *pairs_result;

  TableRepository repo;
  std::vector<bool> same_family(pairs.size(), false);
  for (size_t i = 1; i < pairs.size(); ++i) {
    repo.AddTable("dataset_" + std::to_string(i), pairs[i].cand)
        .Abort("registering table");
    same_family[i] = pairs[i].family == pairs[0].family;
  }
  std::printf("Repository: %zu tables, %zu candidate column pairs\n",
              repo.num_tables(), repo.ExtractColumnPairs().size());

  // 2. Offline: sketch every candidate column pair.
  JoinMIConfig config;
  config.sketch_method = SketchMethod::kTupsk;
  config.sketch_capacity = 1024;
  config.aggregation = AggKind::kFirst;  // type-safe for mixed repositories
  config.min_join_size = 100;
  SketchIndex index(config);
  auto indexed = index.IndexRepository(repo);
  indexed.status().Abort("indexing repository");
  std::printf("Sketch index: %zu candidate sketches of capacity %zu\n\n",
              *indexed, config.sketch_capacity);

  // --limit-index N keeps only the first N candidates (global insertion
  // order), so the persisted index AND every drift-check reference below
  // describe that prefix. The ingest e2e serves a prefix deployment,
  // appends the tail through ingest_ctl against the full persisted index,
  // and uses this flag to assert pre-swap rankings stay on the old epoch.
  if (limit_index > 0 && static_cast<size_t>(limit_index) < index.size()) {
    SketchIndex limited(config);
    for (size_t i = 0; i < static_cast<size_t>(limit_index); ++i) {
      const IndexedCandidate& candidate = index.candidates()[i];
      limited.AddSketch(candidate.ref, candidate.sketch())
          .Abort("truncating the index");
    }
    index = std::move(limited);
    std::printf("Limited the index to its first %ld candidates "
                "(--limit-index)\n\n", limit_index);
  }

  // 3. Online: the user arrives with their own table (the held-out pair's
  //    train side) and asks for the top augmentations for target Y.
  const auto& query_table = pairs[0].train;
  auto query = JoinMIQuery::Create(*query_table, "K", "Y", config);
  query.status().Abort("sketching the query table");
  auto hits = index.Query(*query, /*top_k=*/8);
  hits.status().Abort("querying the index");

  std::printf("Top augmentation candidates for target 'Y' (query table has "
              "%zu rows):\n\n", query_table->num_rows());
  std::printf("  %-36s %9s %8s %-9s %s\n", "candidate", "est. MI", "samples",
              "estimator", "ground truth");
  for (const DiscoveryHit& hit : *hits) {
    // Recover the pair index from the table name to report ground truth.
    const size_t idx =
        static_cast<size_t>(std::stoul(hit.ref.table_name.substr(8)));
    std::printf("  %-36s %9.3f %8zu %-9s %s\n", hit.ref.ToString().c_str(),
                hit.mi, hit.join_size, MIEstimatorKindToString(hit.estimator),
                same_family[idx] ? "related (same latent family)"
                                 : "unrelated");
  }
  if (hits->empty()) {
    std::printf("  (no candidate cleared the %zu-sample join threshold)\n",
                config.min_join_size);
  }
  std::printf(
      "\nEvery score above was computed from two sketches of at most %zu\n"
      "tuples each; no join against the repository was materialized.\n",
      config.sketch_capacity);

  // 4. Persistence: the index survives a restart. Write it out, load it in
  //    a fresh object, and verify the reloaded index answers identically —
  //    the sketch-once / query-many deployment across processes.
  const std::string index_path =
      keep_index_path.empty() ? "/tmp/joinmi_dataset_search_index." +
                                    std::to_string(getpid()) + ".bin"
                              : keep_index_path;
  WriteIndexFile(index, index_path).Abort("persisting the index");
  auto reloaded = ReadIndexFile(index_path);
  reloaded.status().Abort("reloading the index");
  auto hits_again = reloaded->Query(*query, /*top_k=*/8);
  hits_again.status().Abort("querying the reloaded index");
  bool identical = hits_again->size() == hits->size();
  for (size_t i = 0; identical && i < hits->size(); ++i) {
    identical = (*hits_again)[i].mi == (*hits)[i].mi &&
                (*hits_again)[i].join_size == (*hits)[i].join_size &&
                (*hits_again)[i].ref.ToString() == (*hits)[i].ref.ToString();
  }
  std::printf(
      "\nPersisted the index to %s and reloaded it: %zu sketches, "
      "rankings %s.\n",
      index_path.c_str(), reloaded->size(),
      identical ? "identical" : "DIFFER (bug!)");

  // 5. Sharding: partition the index across shard files and serve them
  //    through Router::Open — the one construction path for every sharded
  //    deployment (local files here; host:port endpoints in part 6).
  //    Drift check: the routed ranking must be bit-identical to the
  //    unsharded index-backed search for every shard count and policy,
  //    and a repeated query must be answered from the router's result
  //    cache with the exact same bits.
  auto unsharded =
      TopKJoinMISearch(*query_table, {"K", "Y"}, index, /*k=*/8);
  unsharded.status().Abort("unsharded index-backed search");

  // Bitwise comparison against the unsharded reference ranking — the
  // invariant every serving path in this example must preserve.
  auto matches_unsharded = [&](const TopKSearchResult& result,
                               bool check_counters) {
    bool same = result.hits.size() == unsharded->hits.size() &&
                result.shard_failures.empty();
    if (check_counters) {
      same = same && result.num_candidates == unsharded->num_candidates &&
             result.num_evaluated == unsharded->num_evaluated &&
             result.num_skipped == unsharded->num_skipped &&
             result.num_errors == unsharded->num_errors;
    }
    for (size_t i = 0; same && i < unsharded->hits.size(); ++i) {
      same = result.hits[i].estimate.mi == unsharded->hits[i].estimate.mi &&
             result.hits[i].estimate.sample_size ==
                 unsharded->hits[i].estimate.sample_size &&
             result.hits[i].estimate.estimator ==
                 unsharded->hits[i].estimate.estimator &&
             result.hits[i].candidate.ToString() ==
                 unsharded->hits[i].candidate.ToString();
    }
    return same;
  };

  const std::string shard_root = "/tmp/joinmi_dataset_search_shards." +
                                 std::to_string(getpid());
  bool drift = false;
  bool cache_ok = true;
  uint64_t cache_hits_total = 0;
  std::string last_manifest_path;
  std::string final_stats;  // last relevant router's metrics snapshot
  for (ShardPartitionPolicy policy : {ShardPartitionPolicy::kRoundRobin,
                                      ShardPartitionPolicy::kHashByDataset}) {
    for (size_t num_shards : {1u, 3u}) {
      const std::string dir = shard_root + "/" +
                              ShardPartitionPolicyToString(policy) + "_" +
                              std::to_string(num_shards);
      auto manifest_path = BuildShards(index, num_shards, policy, dir);
      manifest_path.status().Abort("partitioning the index");
      last_manifest_path = *manifest_path;
      RouterOptions local_options;
      local_options.manifest_path = *manifest_path;
      auto router = Router::Open(local_options);
      router.status().Abort("opening the shard router");
      auto via_router = (*router)->Search(*query_table, {"K", "Y"}, /*k=*/8);
      via_router.status().Abort("routed search");
      const bool same = matches_unsharded(*via_router, true);
      std::printf("drift check  : policy %-12s K=%zu -> %s\n",
                  ShardPartitionPolicyToString(policy), num_shards,
                  same ? "identical to unsharded" : "DRIFT (bug!)");
      if (!same) drift = true;
      // Cache check: the identical query again must be a cache hit AND
      // byte-identical to the first answer (which already matched the
      // unsharded reference).
      auto repeat = (*router)->Search(*query_table, {"K", "Y"}, /*k=*/8);
      repeat.status().Abort("repeated routed search");
      const RouterCacheStats cache = (*router)->cache_stats();
      if (cache.hits < 1 || !matches_unsharded(*repeat, true)) {
        cache_ok = false;
      }
      cache_hits_total += cache.hits;
      final_stats = (*router)->StatsJson();
    }
  }
  std::printf("cache check  : repeated queries served from the router "
              "cache (%llu hits across 4 deployments), bit-identical -> "
              "%s\n",
              static_cast<unsigned long long>(cache_hits_total),
              cache_ok ? "ok" : "CACHE BROKE (bug!)");

  // 6. Networked serving (only when CI or an operator points us at live
  //    shard servers): the same query through RpcShardClient. Healthy
  //    deployments must be drift-free vs. the unsharded index; partially
  //    down deployments must fail strict queries and answer degraded ones
  //    with exactly the surviving shards' merged top-k.
  bool rpc_ok = true;
  if (!rpc_replica_endpoints_path.empty()) {
    // 6b. Replicated serving drill: the endpoints file maps every shard to
    //     its replicas; Router::Open sees the multi-replica lines and
    //     assembles failover-capable replica clients behind the same
    //     facade. The result cache is OFF for this drill — every loop
    //     iteration must actually cross the wire, or a mid-run replica
    //     kill would be masked by a cached answer. Each iteration is a
    //     STRICT query that must match the unsharded answer with zero
    //     shard failures — run with --rpc-loop under a harness that kills
    //     a replica midway and this exits nonzero unless failover
    //     absorbed the outage.
    auto replica_map = ReadShardEndpoints(rpc_replica_endpoints_path);
    replica_map.status().Abort("reading the replica endpoints file");
    size_t replicas_total = 0;
    for (const auto& row : *replica_map) replicas_total += row.size();
    RouterOptions replica_options;
    replica_options.manifest_path = rpc_manifest_path;
    replica_options.replica_endpoints = *replica_map;
    replica_options.serving.cooldown_ms = 500;
    replica_options.cache_entries = 0;
    auto rpc_router = Router::Open(replica_options);
    rpc_router.status().Abort("opening the replicated router");
    long matched = 0;
    for (long q = 0; q < rpc_loop; ++q) {
      if (q > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
      auto via_rpc =
          (*rpc_router)->Search(*query_table, {"K", "Y"}, /*k=*/8);
      if (!via_rpc.ok()) {
        std::printf("replica drill: strict query %ld/%ld FAILED: %s\n",
                    q + 1, rpc_loop, via_rpc.status().ToString().c_str());
        rpc_ok = false;
        continue;
      }
      if (matches_unsharded(*via_rpc, false)) {
        ++matched;
      } else {
        rpc_ok = false;
      }
    }
    std::printf("replica drill: %ld/%ld strict queries identical to "
                "unsharded with zero shard failures (%zu shards, %zu "
                "replica servers) -> %s\n",
                matched, rpc_loop, (*rpc_router)->num_shards(),
                replicas_total,
                matched == rpc_loop ? "ok" : "FAILOVER FAILED (bug!)");
    final_stats = (*rpc_router)->StatsJson();
  } else if (!rpc_manifest_path.empty()) {
    RouterOptions rpc_options;
    rpc_options.manifest_path = rpc_manifest_path;
    rpc_options.endpoints_path = rpc_endpoints_path;
    auto rpc_router = Router::Open(rpc_options);
    rpc_router.status().Abort("opening the RPC-backed router");

    if (rpc_expect_down == 0) {
      auto via_rpc =
          (*rpc_router)->Search(*query_table, {"K", "Y"}, /*k=*/8);
      via_rpc.status().Abort("RPC-backed search");
      const bool same = matches_unsharded(*via_rpc, false);
      std::printf("rpc check    : %zu shards over loopback -> %s\n",
                  (*rpc_router)->num_shards(),
                  same ? "identical to unsharded" : "DRIFT (bug!)");
      if (!same) rpc_ok = false;
      // The repeat must come out of the router's cache and stay
      // bit-identical even though the backend is remote.
      auto repeat =
          (*rpc_router)->Search(*query_table, {"K", "Y"}, /*k=*/8);
      repeat.status().Abort("repeated RPC-backed search");
      const RouterCacheStats rpc_cache = (*rpc_router)->cache_stats();
      const bool rpc_cached =
          rpc_cache.hits >= 1 && matches_unsharded(*repeat, false);
      std::printf("rpc cache    : repeat served from the router cache, "
                  "bit-identical -> %s\n",
                  rpc_cached ? "ok" : "CACHE BROKE (bug!)");
      if (!rpc_cached) rpc_ok = false;

      if (rpc_pipeline_drill > 0) {
        // Pipelining drill: ONE connection per shard, N concurrent strict
        // queries interleaved on it. Every response is demuxed by
        // request_id back to its caller, and every ranking must still be
        // bit-identical to the unsharded answer. The cache is OFF so all
        // N queries actually hit the wire instead of the first answer.
        RouterOptions drill_options;
        drill_options.manifest_path = rpc_manifest_path;
        drill_options.endpoints_path = rpc_endpoints_path;
        drill_options.serving.pool_size = 1;
        drill_options.cache_entries = 0;
        drill_options.num_threads = 1;
        auto drill_router = Router::Open(drill_options);
        drill_router.status().Abort("opening the pipelined drill router");
        const size_t inflight = static_cast<size_t>(rpc_pipeline_drill);
        std::vector<int> matched(inflight, 0);
        std::vector<std::thread> drill_threads;
        for (size_t t = 0; t < inflight; ++t) {
          drill_threads.emplace_back([&, t] {
            auto result =
                (*drill_router)->Search(*query_table, {"K", "Y"}, /*k=*/8);
            if (!result.ok()) return;
            matched[t] = matches_unsharded(*result, false) ? 1 : 0;
          });
        }
        for (std::thread& thread : drill_threads) thread.join();
        size_t ok_count = 0;
        for (int ok : matched) ok_count += static_cast<size_t>(ok);
        std::printf("pipeline drill: %zu/%zu interleaved strict queries on "
                    "1 connection/shard identical to unsharded -> %s\n",
                    ok_count, inflight,
                    ok_count == inflight ? "ok" : "PIPELINING BROKE (bug!)");
        if (ok_count != inflight) rpc_ok = false;
      }
    } else {
      // Outage drill. Strict must refuse...
      auto rpc_query = JoinMIQuery::Create(*query_table, "K", "Y",
                                           (*rpc_router)->search_config());
      rpc_query.status().Abort("sketching the RPC query");
      auto strict = (*rpc_router)->SearchQuery(*rpc_query, /*k=*/8,
                                               /*num_threads=*/0,
                                               ShardQueryMode::kStrict);
      if (strict.ok()) {
        std::printf("rpc degraded : strict mode unexpectedly succeeded "
                    "with %ld shards down (bug!)\n", rpc_expect_down);
        rpc_ok = false;
      }
      // ...degraded must answer, reporting exactly the expected outages.
      auto degraded = (*rpc_router)->SearchQuery(*rpc_query, /*k=*/8,
                                                 /*num_threads=*/0,
                                                 ShardQueryMode::kDegraded);
      degraded.status().Abort("degraded RPC search");
      if (degraded->shard_failures.size() !=
          static_cast<size_t>(rpc_expect_down)) {
        std::printf("rpc degraded : %zu shard failures recorded, expected "
                    "%ld (bug!)\n", degraded->shard_failures.size(),
                    rpc_expect_down);
        rpc_ok = false;
      }
      // Recompute the expected degraded answer from the local shard files
      // (CI runs this next to the servers' shard directory): per-shard
      // top-k of every surviving shard, merged on (MI desc, global asc).
      std::set<size_t> down;
      for (const ShardFailure& failure : degraded->shard_failures) {
        down.insert(failure.shard);
      }
      const std::string manifest_dir =
          std::filesystem::path(rpc_manifest_path).parent_path().string();
      auto manifest = ReadManifestFile(rpc_manifest_path);
      manifest.status().Abort("reading the manifest for the drill");
      std::vector<ShardSearchHit> expected;
      for (size_t s = 0; s < manifest->shards.size(); ++s) {
        if (down.count(s) != 0) continue;
        auto client =
            ShardedSketchIndex::LocalFileFactory()(*manifest, s,
                                                   manifest_dir);
        client.status().Abort("loading a surviving shard locally");
        auto shard_hits = (*client)->Search(*rpc_query, /*k=*/8, 0);
        shard_hits.status().Abort("searching a surviving shard locally");
        expected.insert(expected.end(), shard_hits->hits.begin(),
                        shard_hits->hits.end());
      }
      std::sort(expected.begin(), expected.end(),
                [](const ShardSearchHit& a, const ShardSearchHit& b) {
                  return internal::BetterByMIThenKey(
                      a.estimate.mi, a.global_index, b.estimate.mi,
                      b.global_index);
                });
      if (expected.size() > 8) expected.resize(8);
      // The router's TopKSearchResult projection drops the merge-internal
      // global indices, so the diff keys on candidate identity + MI bits.
      bool same = degraded->hits.size() == expected.size();
      for (size_t i = 0; same && i < expected.size(); ++i) {
        same = degraded->hits[i].candidate.ToString() ==
                   expected[i].ref.ToString() &&
               degraded->hits[i].estimate.mi == expected[i].estimate.mi;
      }
      std::printf("rpc degraded : %ld down, %zu shard failures recorded, "
                  "surviving merge %s\n",
                  rpc_expect_down, degraded->shard_failures.size(),
                  same ? "matches local recomputation"
                       : "DIFFERS (bug!)");
      if (!same) rpc_ok = false;
    }
    final_stats = (*rpc_router)->StatsJson();
  }

  // 7. Overload drill: saturate an armed admission gate with rounds of N
  //    concurrent identical queries until at least one is shed. Every
  //    rejection must be the structured kOverloaded carrying a parseable
  //    retry_after_ms hint; every ADMITTED query must still match the
  //    unsharded answer bit-for-bit; and nothing may fail any other way.
  //    The drill router runs with its cache OFF so every query reaches
  //    the gate and the backend. Against an RPC target with
  //    --router-max-pending 0, the rejections must come from a shard
  //    server started with --max-pending (they propagate through strict
  //    mode with code and hint intact).
  if (overload_drill > 0) {
    RouterOptions drill_options;
    if (have_rpc_target) {
      drill_options.manifest_path = rpc_manifest_path;
      drill_options.endpoints_path = rpc_replica_endpoints_path.empty()
                                         ? rpc_endpoints_path
                                         : rpc_replica_endpoints_path;
    } else {
      drill_options.manifest_path = last_manifest_path;
    }
    drill_options.cache_entries = 0;
    drill_options.max_pending = static_cast<size_t>(router_max_pending);
    auto drill_router = Router::Open(drill_options);
    drill_router.status().Abort("opening the overload-drill router");
    const size_t fan = static_cast<size_t>(overload_drill);
    std::atomic<uint64_t> rejections{0};
    std::atomic<uint64_t> bad_rejections{0};
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> mismatches{0};
    std::atomic<uint64_t> other_failures{0};
    const int kMaxRounds = 200;
    int rounds = 0;
    while (rounds < kMaxRounds && rejections.load() == 0) {
      ++rounds;
      std::vector<std::thread> threads;
      threads.reserve(fan);
      for (size_t t = 0; t < fan; ++t) {
        threads.emplace_back([&] {
          auto result =
              (*drill_router)->Search(*query_table, {"K", "Y"}, /*k=*/8);
          if (!result.ok()) {
            if (result.status().IsOverloaded()) {
              rejections.fetch_add(1);
              if (RetryAfterHintMs(result.status()) < 0) {
                bad_rejections.fetch_add(1);
              }
            } else {
              other_failures.fetch_add(1);
            }
            return;
          }
          admitted.fetch_add(1);
          if (!matches_unsharded(*result, false)) mismatches.fetch_add(1);
        });
      }
      for (std::thread& thread : threads) thread.join();
    }
    const bool drill_ok = rejections.load() > 0 &&
                          bad_rejections.load() == 0 &&
                          mismatches.load() == 0 &&
                          other_failures.load() == 0;
    std::printf("overload drill: %d round(s) of %zu concurrent queries -> "
                "%llu kOverloaded rejection(s) (retry-after on all: %s), "
                "%llu admitted (bit-identical: %s), %llu other failures "
                "-> %s\n",
                rounds, fan,
                static_cast<unsigned long long>(rejections.load()),
                bad_rejections.load() == 0 ? "yes" : "NO (bug!)",
                static_cast<unsigned long long>(admitted.load()),
                mismatches.load() == 0 ? "yes" : "NO (bug!)",
                static_cast<unsigned long long>(other_failures.load()),
                drill_ok ? "ok" : "OVERLOAD DRILL FAILED");
    if (!drill_ok) rpc_ok = false;
    final_stats = (*drill_router)->StatsJson();
  }

  std::filesystem::remove_all(shard_root);
  if (!stats_json_path.empty()) {
    wire::WriteFileBytes(final_stats + "\n", stats_json_path)
        .Abort("writing the stats JSON");
  }
  if (keep_index_path.empty()) std::remove(index_path.c_str());
  return identical && !drift && cache_ok && rpc_ok ? 0 : 1;
}
