// Dataset search over a simulated open-data repository.
//
// Deployment shape from the paper's introduction: sketch every candidate
// column pair of a repository offline, then answer "which tables, joined to
// my table, tell me the most about my target?" online — touching only
// sketches, never the repository's raw rows.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/discovery/opendata_sim.h"
#include "src/discovery/ranking.h"
#include "src/discovery/replica_router.h"
#include "src/discovery/repository.h"
#include "src/discovery/rpc_shard_client.h"
#include "src/discovery/search.h"
#include "src/discovery/sharded_index.h"
#include "src/discovery/sketch_index.h"
#include "src/discovery/topk_merge.h"

using namespace joinmi;

int main(int argc, char** argv) {
  // --keep-index PATH persists the index there (and keeps it) so CI can
  // chain the build_shards tool onto this example's output.
  //
  // --rpc-manifest M --rpc-endpoints E run the same search through
  // RpcShardClient against already-running shard servers and drift-check
  // it against the unsharded answer; --rpc-expect-down N instead asserts
  // that exactly N shards are down: strict mode must fail and degraded
  // mode must return the surviving shards' correctly merged top-k. This
  // is the CI serving end-to-end (generation is fully deterministic, so a
  // rerun probes the same index the servers loaded).
  //
  // --rpc-replica-endpoints E reads a v2 (replicated) endpoints file and
  // routes through ReplicaShardClient instead; --rpc-loop N issues N
  // strict drift-checked queries 200ms apart, so a harness can kill a
  // replica MID-RUN and this process proves failover: every query must
  // keep matching the unsharded answer with zero shard failures.
  //
  // --rpc-pipeline-drill N (with --rpc-endpoints) opens ONE connection
  // per shard and fires N strict queries from N concurrent threads, so
  // every request shares that connection via JMRP v2 pipelining; each
  // ranking is diffed against the unsharded answer and the exit code
  // reflects any divergence.
  std::string keep_index_path;
  std::string rpc_manifest_path;
  std::string rpc_endpoints_path;
  std::string rpc_replica_endpoints_path;
  long rpc_expect_down = 0;
  long rpc_loop = 1;
  long rpc_pipeline_drill = 0;
  for (int arg = 1; arg < argc; ++arg) {
    const bool has_value = arg + 1 < argc;
    if (std::strcmp(argv[arg], "--keep-index") == 0 && has_value) {
      keep_index_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--rpc-manifest") == 0 && has_value) {
      rpc_manifest_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--rpc-endpoints") == 0 && has_value) {
      rpc_endpoints_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--rpc-replica-endpoints") == 0 &&
               has_value) {
      rpc_replica_endpoints_path = argv[++arg];
    } else if (std::strcmp(argv[arg], "--rpc-loop") == 0 && has_value) {
      char* end = nullptr;
      rpc_loop = std::strtol(argv[++arg], &end, 10);
      if (end == argv[arg] || *end != '\0' || rpc_loop < 1 ||
          rpc_loop > 100000) {
        std::fprintf(stderr, "--rpc-loop must be a positive integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[arg], "--rpc-expect-down") == 0 &&
               has_value) {
      char* end = nullptr;
      rpc_expect_down = std::strtol(argv[++arg], &end, 10);
      if (end == argv[arg] || *end != '\0' || rpc_expect_down < 1 ||
          rpc_expect_down > 100000) {
        std::fprintf(stderr,
                     "--rpc-expect-down must be a positive integer\n");
        return 2;
      }
    } else if (std::strcmp(argv[arg], "--rpc-pipeline-drill") == 0 &&
               has_value) {
      char* end = nullptr;
      rpc_pipeline_drill = std::strtol(argv[++arg], &end, 10);
      if (end == argv[arg] || *end != '\0' || rpc_pipeline_drill < 1 ||
          rpc_pipeline_drill > 1024) {
        std::fprintf(stderr,
                     "--rpc-pipeline-drill must be in [1, 1024]\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--keep-index PATH] [--rpc-manifest PATH "
                   "(--rpc-endpoints PATH [--rpc-expect-down N | "
                   "--rpc-pipeline-drill N] | "
                   "--rpc-replica-endpoints PATH [--rpc-loop N])]\n",
                   argv[0]);
      return 2;
    }
  }
  const bool have_rpc_target =
      !rpc_endpoints_path.empty() || !rpc_replica_endpoints_path.empty();
  if (rpc_manifest_path.empty() != !have_rpc_target) {
    std::fprintf(stderr,
                 "--rpc-manifest and exactly one of --rpc-endpoints / "
                 "--rpc-replica-endpoints go together\n");
    return 2;
  }
  if (!rpc_endpoints_path.empty() && !rpc_replica_endpoints_path.empty()) {
    std::fprintf(stderr,
                 "--rpc-endpoints and --rpc-replica-endpoints are "
                 "mutually exclusive\n");
    return 2;
  }
  if (rpc_expect_down > 0 && rpc_endpoints_path.empty()) {
    std::fprintf(stderr,
                 "--rpc-expect-down drills the single-endpoint router "
                 "(--rpc-endpoints)\n");
    return 2;
  }
  if (rpc_pipeline_drill > 0 &&
      (rpc_endpoints_path.empty() || rpc_expect_down > 0)) {
    std::fprintf(stderr,
                 "--rpc-pipeline-drill drills a healthy single-endpoint "
                 "router (--rpc-endpoints, no --rpc-expect-down)\n");
    return 2;
  }
  // 1. Build a repository out of simulated open-data tables. Each generated
  //    pair contributes its candidate table; we keep one query pair aside.
  OpenDataParams params = NYCLikeParams();
  params.num_pairs = 40;
  params.p_string_value = 0.5;
  // 8 latent families: candidates from the query pair's family genuinely
  // inform its target; the other ~35 tables are noise for this query.
  params.num_families = 8;
  auto pairs_result = GenerateOpenDataCollection(params);
  pairs_result.status().Abort("generating repository");
  auto& pairs = *pairs_result;

  TableRepository repo;
  std::vector<bool> same_family(pairs.size(), false);
  for (size_t i = 1; i < pairs.size(); ++i) {
    repo.AddTable("dataset_" + std::to_string(i), pairs[i].cand)
        .Abort("registering table");
    same_family[i] = pairs[i].family == pairs[0].family;
  }
  std::printf("Repository: %zu tables, %zu candidate column pairs\n",
              repo.num_tables(), repo.ExtractColumnPairs().size());

  // 2. Offline: sketch every candidate column pair.
  JoinMIConfig config;
  config.sketch_method = SketchMethod::kTupsk;
  config.sketch_capacity = 1024;
  config.aggregation = AggKind::kFirst;  // type-safe for mixed repositories
  config.min_join_size = 100;
  SketchIndex index(config);
  auto indexed = index.IndexRepository(repo);
  indexed.status().Abort("indexing repository");
  std::printf("Sketch index: %zu candidate sketches of capacity %zu\n\n",
              *indexed, config.sketch_capacity);

  // 3. Online: the user arrives with their own table (the held-out pair's
  //    train side) and asks for the top augmentations for target Y.
  const auto& query_table = pairs[0].train;
  auto query = JoinMIQuery::Create(*query_table, "K", "Y", config);
  query.status().Abort("sketching the query table");
  auto hits = index.Query(*query, /*top_k=*/8);
  hits.status().Abort("querying the index");

  std::printf("Top augmentation candidates for target 'Y' (query table has "
              "%zu rows):\n\n", query_table->num_rows());
  std::printf("  %-36s %9s %8s %-9s %s\n", "candidate", "est. MI", "samples",
              "estimator", "ground truth");
  for (const DiscoveryHit& hit : *hits) {
    // Recover the pair index from the table name to report ground truth.
    const size_t idx =
        static_cast<size_t>(std::stoul(hit.ref.table_name.substr(8)));
    std::printf("  %-36s %9.3f %8zu %-9s %s\n", hit.ref.ToString().c_str(),
                hit.mi, hit.join_size, MIEstimatorKindToString(hit.estimator),
                same_family[idx] ? "related (same latent family)"
                                 : "unrelated");
  }
  if (hits->empty()) {
    std::printf("  (no candidate cleared the %zu-sample join threshold)\n",
                config.min_join_size);
  }
  std::printf(
      "\nEvery score above was computed from two sketches of at most %zu\n"
      "tuples each; no join against the repository was materialized.\n",
      config.sketch_capacity);

  // 4. Persistence: the index survives a restart. Write it out, load it in
  //    a fresh object, and verify the reloaded index answers identically —
  //    the sketch-once / query-many deployment across processes.
  const std::string index_path =
      keep_index_path.empty() ? "/tmp/joinmi_dataset_search_index." +
                                    std::to_string(getpid()) + ".bin"
                              : keep_index_path;
  WriteIndexFile(index, index_path).Abort("persisting the index");
  auto reloaded = ReadIndexFile(index_path);
  reloaded.status().Abort("reloading the index");
  auto hits_again = reloaded->Query(*query, /*top_k=*/8);
  hits_again.status().Abort("querying the reloaded index");
  bool identical = hits_again->size() == hits->size();
  for (size_t i = 0; identical && i < hits->size(); ++i) {
    identical = (*hits_again)[i].mi == (*hits)[i].mi &&
                (*hits_again)[i].join_size == (*hits)[i].join_size &&
                (*hits_again)[i].ref.ToString() == (*hits)[i].ref.ToString();
  }
  std::printf(
      "\nPersisted the index to %s and reloaded it: %zu sketches, "
      "rankings %s.\n",
      index_path.c_str(), reloaded->size(),
      identical ? "identical" : "DIFFER (bug!)");

  // 5. Sharding: partition the index across shard files, reload through the
  //    manifest, and fan the same search out — the multi-node deployment.
  //    Drift check: the sharded ranking must be bit-identical to the
  //    unsharded index-backed search for every shard count and policy.
  auto unsharded =
      TopKJoinMISearch(*query_table, {"K", "Y"}, index, /*k=*/8);
  unsharded.status().Abort("unsharded index-backed search");
  const std::string shard_root = "/tmp/joinmi_dataset_search_shards." +
                                 std::to_string(getpid());
  bool drift = false;
  for (ShardPartitionPolicy policy : {ShardPartitionPolicy::kRoundRobin,
                                      ShardPartitionPolicy::kHashByDataset}) {
    for (size_t num_shards : {1u, 3u}) {
      const std::string dir = shard_root + "/" +
                              ShardPartitionPolicyToString(policy) + "_" +
                              std::to_string(num_shards);
      auto manifest_path = BuildShards(index, num_shards, policy, dir);
      manifest_path.status().Abort("partitioning the index");
      auto sharded = ShardedSketchIndex::Load(*manifest_path);
      sharded.status().Abort("loading the sharded index");
      auto via_shards =
          TopKJoinMISearch(*query_table, {"K", "Y"}, *sharded, /*k=*/8);
      via_shards.status().Abort("sharded search");
      bool same = via_shards->hits.size() == unsharded->hits.size() &&
                  via_shards->num_candidates == unsharded->num_candidates &&
                  via_shards->num_evaluated == unsharded->num_evaluated &&
                  via_shards->num_skipped == unsharded->num_skipped &&
                  via_shards->num_errors == unsharded->num_errors;
      for (size_t i = 0; same && i < unsharded->hits.size(); ++i) {
        same = via_shards->hits[i].estimate.mi ==
                   unsharded->hits[i].estimate.mi &&
               via_shards->hits[i].estimate.sample_size ==
                   unsharded->hits[i].estimate.sample_size &&
               via_shards->hits[i].estimate.estimator ==
                   unsharded->hits[i].estimate.estimator &&
               via_shards->hits[i].candidate.ToString() ==
                   unsharded->hits[i].candidate.ToString();
      }
      std::printf("drift check  : policy %-12s K=%zu -> %s\n",
                  ShardPartitionPolicyToString(policy), num_shards,
                  same ? "identical to unsharded" : "DRIFT (bug!)");
      if (!same) drift = true;
    }
  }
  std::filesystem::remove_all(shard_root);

  // 6. Networked serving (only when CI or an operator points us at live
  //    shard servers): the same query through RpcShardClient. Healthy
  //    deployments must be drift-free vs. the unsharded index; partially
  //    down deployments must fail strict queries and answer degraded ones
  //    with exactly the surviving shards' merged top-k.
  bool rpc_ok = true;
  if (!rpc_replica_endpoints_path.empty()) {
    // 6b. Replicated serving drill: a v2 endpoints file maps every shard
    //     to its replicas; ReplicaShardClient round-robins across them and
    //     fails over on outages. Each loop iteration is a STRICT query
    //     that must match the unsharded answer with zero shard failures —
    //     run with --rpc-loop under a harness that kills a replica midway
    //     and this exits nonzero unless failover absorbed the outage.
    auto replica_map = ReadReplicaEndpointsFile(rpc_replica_endpoints_path);
    replica_map.status().Abort("reading the replica endpoints file");
    ReplicaRouterOptions replica_options;
    replica_options.cooldown_ms = 500;
    auto rpc_index = ShardedSketchIndex::Load(
        rpc_manifest_path,
        ReplicaShardClient::Factory(*replica_map, replica_options));
    rpc_index.status().Abort("assembling the replicated sharded index");
    size_t replicas_total = 0;
    for (const auto& row : *replica_map) replicas_total += row.size();
    long matched = 0;
    for (long q = 0; q < rpc_loop; ++q) {
      if (q > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
      auto via_rpc = TopKJoinMISearch(*query_table, {"K", "Y"}, *rpc_index,
                                      /*k=*/8, /*num_threads=*/0,
                                      ShardQueryMode::kStrict);
      if (!via_rpc.ok()) {
        std::printf("replica drill: strict query %ld/%ld FAILED: %s\n",
                    q + 1, rpc_loop, via_rpc.status().ToString().c_str());
        rpc_ok = false;
        continue;
      }
      bool same = via_rpc->hits.size() == unsharded->hits.size() &&
                  via_rpc->shard_failures.empty();
      for (size_t i = 0; same && i < unsharded->hits.size(); ++i) {
        same = via_rpc->hits[i].estimate.mi ==
                   unsharded->hits[i].estimate.mi &&
               via_rpc->hits[i].estimate.sample_size ==
                   unsharded->hits[i].estimate.sample_size &&
               via_rpc->hits[i].candidate.ToString() ==
                   unsharded->hits[i].candidate.ToString();
      }
      if (same) {
        ++matched;
      } else {
        rpc_ok = false;
      }
    }
    std::printf("replica drill: %ld/%ld strict queries identical to "
                "unsharded with zero shard failures (%zu shards, %zu "
                "replica servers) -> %s\n",
                matched, rpc_loop, rpc_index->num_shards(), replicas_total,
                matched == rpc_loop ? "ok" : "FAILOVER FAILED (bug!)");
  } else if (!rpc_manifest_path.empty()) {
    auto endpoints = ReadEndpointsFile(rpc_endpoints_path);
    endpoints.status().Abort("reading the endpoint file");
    auto rpc_index = ShardedSketchIndex::Load(
        rpc_manifest_path, RpcShardClient::Factory(*endpoints));
    rpc_index.status().Abort("assembling the RPC-backed sharded index");

    if (rpc_expect_down == 0) {
      auto via_rpc =
          TopKJoinMISearch(*query_table, {"K", "Y"}, *rpc_index, /*k=*/8);
      via_rpc.status().Abort("RPC-backed search");
      bool same = via_rpc->hits.size() == unsharded->hits.size() &&
                  via_rpc->shard_failures.empty();
      for (size_t i = 0; same && i < unsharded->hits.size(); ++i) {
        same = via_rpc->hits[i].estimate.mi ==
                   unsharded->hits[i].estimate.mi &&
               via_rpc->hits[i].estimate.sample_size ==
                   unsharded->hits[i].estimate.sample_size &&
               via_rpc->hits[i].candidate.ToString() ==
                   unsharded->hits[i].candidate.ToString();
      }
      std::printf("rpc check    : %zu shards over loopback -> %s\n",
                  rpc_index->num_shards(),
                  same ? "identical to unsharded" : "DRIFT (bug!)");
      if (!same) rpc_ok = false;

      if (rpc_pipeline_drill > 0) {
        // Pipelining drill: ONE connection per shard, N concurrent strict
        // queries interleaved on it. Every response is demuxed by
        // request_id back to its caller, and every ranking must still be
        // bit-identical to the unsharded answer.
        RpcClientOptions drill_options;
        drill_options.pool_size = 1;
        auto drill_index = ShardedSketchIndex::Load(
            rpc_manifest_path,
            RpcShardClient::Factory(*endpoints, drill_options));
        drill_index.status().Abort("assembling the pipelined drill index");
        const size_t inflight = static_cast<size_t>(rpc_pipeline_drill);
        std::vector<int> matched(inflight, 0);
        std::vector<std::thread> drill_threads;
        for (size_t t = 0; t < inflight; ++t) {
          drill_threads.emplace_back([&, t] {
            auto result =
                TopKJoinMISearch(*query_table, {"K", "Y"}, *drill_index,
                                 /*k=*/8, /*num_threads=*/1,
                                 ShardQueryMode::kStrict);
            if (!result.ok()) return;
            bool ok = result->hits.size() == unsharded->hits.size() &&
                      result->shard_failures.empty();
            for (size_t i = 0; ok && i < unsharded->hits.size(); ++i) {
              ok = result->hits[i].estimate.mi ==
                       unsharded->hits[i].estimate.mi &&
                   result->hits[i].estimate.sample_size ==
                       unsharded->hits[i].estimate.sample_size &&
                   result->hits[i].candidate.ToString() ==
                       unsharded->hits[i].candidate.ToString();
            }
            matched[t] = ok ? 1 : 0;
          });
        }
        for (std::thread& thread : drill_threads) thread.join();
        size_t ok_count = 0;
        for (int ok : matched) ok_count += static_cast<size_t>(ok);
        std::printf("pipeline drill: %zu/%zu interleaved strict queries on "
                    "1 connection/shard identical to unsharded -> %s\n",
                    ok_count, inflight,
                    ok_count == inflight ? "ok" : "PIPELINING BROKE (bug!)");
        if (ok_count != inflight) rpc_ok = false;
      }
    } else {
      // Outage drill. Strict must refuse...
      auto rpc_query =
          JoinMIQuery::Create(*query_table, "K", "Y", rpc_index->config());
      rpc_query.status().Abort("sketching the RPC query");
      auto strict = rpc_index->Search(*rpc_query, /*k=*/8, /*num_threads=*/0,
                                      ShardQueryMode::kStrict);
      if (strict.ok()) {
        std::printf("rpc degraded : strict mode unexpectedly succeeded "
                    "with %ld shards down (bug!)\n", rpc_expect_down);
        rpc_ok = false;
      }
      // ...degraded must answer, reporting exactly the expected outages.
      auto degraded = rpc_index->Search(*rpc_query, /*k=*/8,
                                        /*num_threads=*/0,
                                        ShardQueryMode::kDegraded);
      degraded.status().Abort("degraded RPC search");
      if (degraded->shard_failures.size() !=
          static_cast<size_t>(rpc_expect_down)) {
        std::printf("rpc degraded : %zu shard failures recorded, expected "
                    "%ld (bug!)\n", degraded->shard_failures.size(),
                    rpc_expect_down);
        rpc_ok = false;
      }
      // Recompute the expected degraded answer from the local shard files
      // (CI runs this next to the servers' shard directory): per-shard
      // top-k of every surviving shard, merged on (MI desc, global asc).
      std::set<size_t> down;
      for (const ShardFailure& failure : degraded->shard_failures) {
        down.insert(failure.shard);
      }
      const std::string manifest_dir =
          std::filesystem::path(rpc_manifest_path).parent_path().string();
      auto manifest = ReadManifestFile(rpc_manifest_path);
      manifest.status().Abort("reading the manifest for the drill");
      std::vector<ShardSearchHit> expected;
      for (size_t s = 0; s < manifest->shards.size(); ++s) {
        if (down.count(s) != 0) continue;
        auto client =
            ShardedSketchIndex::LocalFileFactory()(*manifest, s,
                                                   manifest_dir);
        client.status().Abort("loading a surviving shard locally");
        auto shard_hits = (*client)->Search(*rpc_query, /*k=*/8, 0);
        shard_hits.status().Abort("searching a surviving shard locally");
        expected.insert(expected.end(), shard_hits->hits.begin(),
                        shard_hits->hits.end());
      }
      std::sort(expected.begin(), expected.end(),
                [](const ShardSearchHit& a, const ShardSearchHit& b) {
                  return internal::BetterByMIThenKey(
                      a.estimate.mi, a.global_index, b.estimate.mi,
                      b.global_index);
                });
      if (expected.size() > 8) expected.resize(8);
      bool same = degraded->hits.size() == expected.size();
      for (size_t i = 0; same && i < expected.size(); ++i) {
        same = degraded->hits[i].global_index ==
                   expected[i].global_index &&
               degraded->hits[i].estimate.mi == expected[i].estimate.mi;
      }
      std::printf("rpc degraded : %ld down, %zu shard failures recorded, "
                  "surviving merge %s\n",
                  rpc_expect_down, degraded->shard_failures.size(),
                  same ? "matches local recomputation"
                       : "DIFFERS (bug!)");
      if (!same) rpc_ok = false;
    }
  }

  if (keep_index_path.empty()) std::remove(index_path.c_str());
  return identical && !drift && rpc_ok ? 0 : 1;
}
