// Estimator tour: the library's four MI estimator families side by side on
// data with known ground truth — a runnable version of the paper's
// Section II / V-B1 discussion of estimator choice.
//
// Shows: (1) each estimator near its home turf; (2) what goes wrong when an
// estimator is used off-type (the MLE on near-continuous data, KSG on heavy
// ties); (3) the bias-correction variants.

#include <cmath>
#include <cstdio>

#include "src/common/math.h"
#include "src/common/random.h"
#include "src/mi/estimator.h"
#include "src/mi/mle.h"

using namespace joinmi;

namespace {

void Report(const char* name, Result<double> estimate, double truth) {
  if (!estimate.ok()) {
    std::printf("  %-28s      error: %s\n", name,
                estimate.status().message().c_str());
    return;
  }
  std::printf("  %-28s %6.3f   (truth %5.3f, err %+6.3f)\n", name, *estimate,
              truth, *estimate - truth);
}

}  // namespace

int main() {
  Rng rng(271828);
  constexpr int kSamples = 5000;

  // ---- Case 1: discrete-discrete (categorical) --------------------------
  // Y = X with probability 0.75, else uniform; analytic MI computed from
  // the 4x4 joint.
  {
    const int m = 4;
    const double p_copy = 0.75;
    PairedSample sample;
    for (int i = 0; i < kSamples; ++i) {
      const int x = static_cast<int>(rng.NextBounded(m));
      const int y = rng.Bernoulli(p_copy) ? x
                                          : static_cast<int>(rng.NextBounded(m));
      sample.x.emplace_back("cat_" + std::to_string(x));
      sample.y.emplace_back("cat_" + std::to_string(y));
    }
    // Joint: p(x,x) = (p + (1-p)/m)/m, p(x,y!=x) = ((1-p)/m)/m.
    const double p_diag = (p_copy + (1 - p_copy) / m) / m;
    const double p_off = ((1 - p_copy) / m) / m;
    const double h_joint =
        -(m * p_diag * std::log(p_diag) +
          m * (m - 1) * p_off * std::log(p_off));
    const double truth = 2 * std::log(static_cast<double>(m)) - h_joint;
    std::printf("Case 1: categorical x categorical (m=4, 75%% copy)\n");
    Report("MLE", EstimateMI(MIEstimatorKind::kMLE, sample), truth);
    Report("Miller-Madow", EstimateMI(MIEstimatorKind::kMillerMadow, sample),
           truth);
    Report("Laplace(alpha=1)", EstimateMI(MIEstimatorKind::kLaplace, sample),
           truth);
    std::printf("\n");
  }

  // ---- Case 2: continuous-continuous ------------------------------------
  {
    const double r = 0.7;
    const double truth = BivariateNormalMI(r);
    PairedSample sample;
    for (int i = 0; i < kSamples; ++i) {
      const double u = rng.Gaussian();
      sample.x.emplace_back(u);
      sample.y.emplace_back(r * u + std::sqrt(1 - r * r) * rng.Gaussian());
    }
    std::printf("Case 2: bivariate Gaussian (r=0.7)\n");
    Report("KSG(k=3)", EstimateMI(MIEstimatorKind::kKSG, sample), truth);
    Report("MixedKSG(k=3)", EstimateMI(MIEstimatorKind::kMixedKSG, sample),
           truth);
    // Off-type use: the plug-in on (nearly) all-distinct values maxes out.
    Report("MLE  [off-type!]", EstimateMI(MIEstimatorKind::kMLE, sample),
           truth);
    std::printf("\n");
  }

  // ---- Case 3: discrete-continuous mixture ------------------------------
  {
    // Y | X=c ~ N(2c, 0.5^2), X uniform over 3 classes. MI = H(X) - H(X|Y);
    // with 2-sigma separation the classes barely overlap: MI ~ ln 3.
    PairedSample sample;
    for (int i = 0; i < kSamples; ++i) {
      const int c = static_cast<int>(rng.NextBounded(3));
      sample.x.emplace_back("sensor_" + std::to_string(c));
      sample.y.emplace_back(rng.Gaussian(2.0 * c, 0.5));
    }
    const double truth_upper = std::log(3.0);
    std::printf(
        "Case 3: 3 discrete classes x Gaussian readout (truth <~ ln 3 = "
        "%.3f)\n", truth_upper);
    Report("DC-KSG(k=3)", EstimateMI(MIEstimatorKind::kDCKSG, sample),
           truth_upper);
    std::printf("\n");
  }

  // ---- Case 4: mixture with heavy ties (join-derived feature) -----------
  {
    // A feature column as a left join creates it: repeated values following
    // the key distribution. MixedKSG handles ties natively; plain KSG needs
    // perturbation.
    const uint64_t m = 6;
    PairedSample sample;
    for (int i = 0; i < kSamples; ++i) {
      const double x = static_cast<double>(rng.NextBounded(m));
      sample.x.emplace_back(x);
      sample.y.emplace_back(x + rng.Uniform(0.0, 2.0));
    }
    const double md = static_cast<double>(m);
    const double truth = std::log(md) - (md - 1.0) * std::log(2.0) / md;
    std::printf("Case 4: discrete-continuous mixture, CDUnif(m=6)\n");
    MIOptions k5;
    k5.k = 5;
    Report("MixedKSG(k=5)", EstimateMI(MIEstimatorKind::kMixedKSG, sample, k5),
           truth);
    Report("DC-KSG(k=3)", EstimateMI(MIEstimatorKind::kDCKSG, sample), truth);
    MIOptions perturb;
    perturb.perturb_sigma = 1e-9;
    Report("KSG + perturbation", EstimateMI(MIEstimatorKind::kKSG, sample,
                                            perturb), truth);
    Report("KSG  [ties, no fix!]", EstimateMI(MIEstimatorKind::kKSG, sample),
           truth);
    std::printf("\n");
  }

  std::printf(
      "Takeaway (paper Sections II & V): pick the estimator by data type —\n"
      "MLE for categorical, KSG/MixedKSG for numeric, DC-KSG for mixed —\n"
      "and do not compare magnitudes across different estimators.\n");
  return 0;
}
